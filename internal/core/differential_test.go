package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"squirrel/internal/checker"
)

// The differential test oracle for the staged parallel kernel: the serial
// kernel (PropagateWorkers = 0) is the reference implementation, and every
// staged configuration must be observationally identical to it on the same
// random plan and the same random update/query stream. "Observationally
// identical" means the full transcript matches byte for byte: per update
// transaction the published version's sequence number and the rendering of
// every materialized store node, and per query the answer's rendering plus
// its poll count, key-based verdict, and version attribution.
//
// Deliberately NOT compared: raw poll instants and the Reflect components
// they induce for virtual-contributor sources. Concurrent polls can tick
// the logical clock in either order, so those instants may permute between
// executors; Eager Compensation makes the answer CONTENTS exact at each
// answer's own Reflect vector regardless, and every transcript is
// additionally validated against the §3 consistency checker, which proves
// each answer correct at its own vector.

// differentialTranscript drives the deterministic workload derived from
// seed through a mediator with the given kernel executor and returns the
// observation transcript. Each call builds its own identically-seeded rng,
// so transcripts for different workers values are directly comparable.
func differentialTranscript(t *testing.T, seed int64, workers int) []string {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	rp := buildRandomPlanWorkers(t, rng, workers)
	var tr []string
	record := func(format string, args ...any) {
		tr = append(tr, fmt.Sprintf(format, args...))
	}
	renderStores := func() string {
		var b strings.Builder
		for _, name := range rp.plan.NonLeaves() {
			st := rp.med.StoreSnapshot(name)
			if st == nil {
				fmt.Fprintf(&b, "%s: <virtual>\n", name)
				continue
			}
			fmt.Fprintf(&b, "%s:\n%s", name, st)
		}
		return b.String()
	}
	runTxn := func(step int) {
		ran, err := rp.med.RunUpdateTransaction()
		if err != nil {
			t.Fatalf("workers=%d step %d txn: %v\nplan:\n%s", workers, step, err, rp.plan)
		}
		record("step %d txn ran=%v seq=%d\n%s",
			step, ran, rp.med.vstore.Current().Seq(), renderStores())
	}
	for step := 0; step < 20; step++ {
		switch op := rng.Intn(10); {
		case op < 5:
			rp.randomLeafCommit(t, rng)
		case op < 8:
			runTxn(step)
		default:
			n := rp.plan.Node(rp.export)
			attrs := n.Schema.AttrNames()
			if rng.Intn(2) == 0 && len(attrs) > 1 {
				attrs = attrs[:1+rng.Intn(len(attrs)-1)]
			}
			mode := []KeyBasedMode{KeyBasedAuto, KeyBasedOff, KeyBasedForce}[rng.Intn(3)]
			res, err := rp.med.QueryOpts(rp.export, attrs, nil, QueryOptions{KeyBased: mode})
			if err != nil {
				t.Fatalf("workers=%d step %d query: %v\nplan:\n%s", workers, step, err, rp.plan)
			}
			record("step %d query attrs=%v mode=%d polled=%d keybased=%v version=%d\n%s",
				step, attrs, mode, res.Polled, res.KeyBased, res.Version, res.Answer)
		}
	}
	// Drain, then record the final state once more.
	for step := 100; ; step++ {
		ran, err := rp.med.RunUpdateTransaction()
		if err != nil {
			t.Fatalf("workers=%d drain: %v", workers, err)
		}
		if !ran {
			break
		}
		record("drain txn seq=%d\n%s", rp.med.vstore.Current().Seq(), renderStores())
	}
	// Each executor must independently agree with from-scratch
	// recomputation and satisfy the §3 consistency definitions.
	rp.checkStores(t)
	env := checker.Environment{VDP: rp.plan, Sources: rp.dbs, Trace: rp.rec}
	if err := env.CheckConsistency(); err != nil {
		t.Fatalf("workers=%d consistency: %v\nplan:\n%s", workers, err, rp.plan)
	}
	return tr
}

// TestDifferentialOracle: for each seeded random plan and workload, the
// serial reference transcript must equal the staged transcript at 1, 2,
// and 8 workers. 70 seeds × 3 staged configurations = 210 staged cases
// (20 seeds under -short).
func TestDifferentialOracle(t *testing.T) {
	seeds := int64(70)
	if testing.Short() {
		seeds = 20
	}
	stagedCases := 0
	for seed := int64(0); seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			ref := differentialTranscript(t, seed, 0)
			for _, workers := range []int{1, 2, 8} {
				got := differentialTranscript(t, seed, workers)
				if len(got) != len(ref) {
					t.Fatalf("workers=%d transcript has %d records, serial has %d",
						workers, len(got), len(ref))
				}
				for i := range ref {
					if got[i] != ref[i] {
						t.Fatalf("workers=%d transcript diverges from the serial reference at record %d:\n--- staged ---\n%s\n--- serial ---\n%s",
							workers, i, got[i], ref[i])
					}
				}
				stagedCases++
			}
		})
	}
	if !testing.Short() && stagedCases < 200 {
		t.Errorf("exercised %d staged cases, want >= 200", stagedCases)
	}
}
