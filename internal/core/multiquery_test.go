package core

import (
	"math/rand"
	"testing"

	"squirrel/internal/algebra"
	"squirrel/internal/checker"
	"squirrel/internal/relation"
	"squirrel/internal/source"
	"squirrel/internal/vdp"
)

// multiExportEnv builds a plan with TWO export relations over the paper's
// sources: T (the join view) and RV = π_{r1,r2} σ_{r4=100} R.
func multiExportEnv(t *testing.T, annT vdp.Annotation, rvVirtual bool) *testEnv {
	t.Helper()
	// Reuse newEnv's sources but a custom plan.
	e := newEnv(t, nil, nil, annT) // builds the standard plan first (ignored below)

	rvSchema := relation.MustSchema("RV", []relation.Attribute{
		{Name: "r1", Type: relation.KindInt}, {Name: "r2", Type: relation.KindInt}}, "r1")
	rvAnn := vdp.AllMaterialized(rvSchema)
	if rvVirtual {
		rvAnn = vdp.AllVirtual(rvSchema)
	}
	tNode := e.vdp_.Node("T")
	nodes := []*vdp.Node{
		{Name: "R", Schema: rSchema(), Source: "db1"},
		{Name: "S", Schema: sSchema(), Source: "db2"},
		e.vdp_.Node("R'"), e.vdp_.Node("S'"), tNode,
		{Name: "RV", Schema: rvSchema, Export: true, Ann: rvAnn,
			Def: vdp.SPJ{Inputs: []vdp.SPJInput{{Rel: "R"}},
				Where: algebra.Eq(algebra.A("r4"), algebra.CInt(100)),
				Proj:  []string{"r1", "r2"}}},
	}
	plan, err := vdp.New(nodes...)
	if err != nil {
		t.Fatal(err)
	}
	med, err := New(Config{
		VDP:      plan,
		Sources:  map[string]SourceConn{"db1": LocalSource{DB: e.db1}, "db2": LocalSource{DB: e.db2}},
		Clock:    e.clk,
		Recorder: e.rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	ConnectLocal(med, e.db1)
	ConnectLocal(med, e.db2)
	if err := med.Initialize(); err != nil {
		t.Fatal(err)
	}
	e.med = med
	e.vdp_ = plan
	return e
}

func TestQueryExprJoinOverExports(t *testing.T) {
	e := multiExportEnv(t, nil, false)
	// Join the two exports: T ⋈ RV on r1... attribute names overlap (both
	// have r1, r2 vs T has r1) — joins need disjoint names, so project
	// first.
	expr := algebra.Join{
		L:  algebra.Project{Input: algebra.Scan{Rel: "T"}, Cols: []string{"r1", "s1"}, As: "tl"},
		R:  algebra.Project{Input: algebra.Scan{Rel: "RV"}, Cols: []string{"r2"}, As: "rr"},
		On: algebra.Eq(algebra.A("s1"), algebra.A("r2")),
	}
	res, err := e.med.QueryExpr(expr, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Ground truth: evaluate the same expression over recomputed exports.
	truth := e.groundTruth(t)
	want, err := expr.Eval(algebra.MapCatalog(truth))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Answer.Equal(want) {
		t.Fatalf("multi-export join:\n%swant\n%s", res.Answer, want)
	}
	if res.Polled != 0 {
		t.Errorf("fully materialized: no polls expected, got %d", res.Polled)
	}
}

func TestQueryExprWithVirtualExports(t *testing.T) {
	// T hybrid and RV fully virtual: the query must build temps for both
	// with ONE poll per source.
	e := multiExportEnv(t, vdp.Ann([]string{"r1", "s1"}, []string{"r3", "s2"}), true)
	expr := algebra.Union{
		L: algebra.Project{Input: algebra.Scan{Rel: "T"}, Cols: []string{"r1"}, As: "u1"},
		R: algebra.Project{Input: algebra.Scan{Rel: "RV"}, Cols: []string{"r1"}, As: "u2"},
	}
	res, err := e.med.QueryExpr(expr, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	truth := e.groundTruth(t)
	want, err := expr.Eval(algebra.MapCatalog(truth))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Answer.Equal(want) {
		t.Fatalf("virtual multi-export union:\n%swant\n%s", res.Answer, want)
	}
	if res.Polled == 0 || res.Polled > 2 {
		t.Errorf("each source polled at most once: polled=%d", res.Polled)
	}
}

func TestQueryExprSQL(t *testing.T) {
	e := multiExportEnv(t, nil, false)
	res, err := e.med.QueryExprSQL(`SELECT s1, s2 FROM T WHERE r1 = 1 UNION SELECT r1, r2 FROM RV`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Answer.Card() == 0 {
		t.Fatalf("empty answer")
	}
	if _, err := e.med.QueryExprSQL("garbage"); err == nil {
		t.Errorf("parse errors propagate")
	}
	if _, err := e.med.QueryExprSQL("SELECT r1 FROM R"); err == nil {
		t.Errorf("leaf relations are not exports")
	}
	if _, err := e.med.QueryExprSQL("SELECT r1 FROM NOPE"); err == nil {
		t.Errorf("unknown relation")
	}
}

func TestQueryExprConsistencySoak(t *testing.T) {
	// Interleave multi-export queries with commits and update
	// transactions; the checker verifies Multi answers against ν at
	// reflect.
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed + 500))
		hybrid := seed%2 == 1
		var annT vdp.Annotation
		if hybrid {
			annT = vdp.Ann([]string{"r1", "s1"}, []string{"r3", "s2"})
		}
		e := multiExportEnv(t, annT, hybrid)
		expr := algebra.Join{
			L:  algebra.Project{Input: algebra.Scan{Rel: "T"}, Cols: []string{"r1", "s1"}, As: "tl"},
			R:  algebra.Project{Input: algebra.Scan{Rel: "RV"}, Cols: []string{"r2"}, As: "rr"},
			On: algebra.Eq(algebra.A("s1"), algebra.A("r2")),
		}
		for step := 0; step < 20; step++ {
			switch op := rng.Intn(10); {
			case op < 4:
				randomCommit(t, e, rng)
			case op < 7:
				if _, err := e.med.RunUpdateTransaction(); err != nil {
					t.Fatal(err)
				}
			default:
				if _, err := e.med.QueryExpr(expr, QueryOptions{}); err != nil {
					t.Fatal(err)
				}
			}
		}
		env := checker.Environment{
			VDP:     e.vdp_,
			Sources: map[string]*source.DB{"db1": e.db1, "db2": e.db2},
			Trace:   e.rec,
		}
		if err := env.CheckConsistency(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
