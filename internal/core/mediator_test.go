package core

import (
	"testing"

	"squirrel/internal/algebra"
	"squirrel/internal/clock"
	"squirrel/internal/delta"
	"squirrel/internal/relation"
	"squirrel/internal/source"
	"squirrel/internal/trace"
	"squirrel/internal/vdp"
)

// testEnv wires the paper's running example: R(r1,r2,r3,r4)@db1,
// S(s1,s2,s3)@db2, R' = π σ_{r4=100} R, S' = π σ_{s3<50} S,
// T = π_{r1,r3,s1,s2}(R' ⋈_{r2=s1} S') — with configurable annotations.
type testEnv struct {
	clk  *clock.Logical
	db1  *source.DB
	db2  *source.DB
	med  *Mediator
	rec  *trace.Recorder
	vdp_ *vdp.VDP
}

func rSchema() *relation.Schema {
	return relation.MustSchema("R", []relation.Attribute{
		{Name: "r1", Type: relation.KindInt}, {Name: "r2", Type: relation.KindInt},
		{Name: "r3", Type: relation.KindInt}, {Name: "r4", Type: relation.KindInt}}, "r1")
}

func sSchema() *relation.Schema {
	return relation.MustSchema("S", []relation.Attribute{
		{Name: "s1", Type: relation.KindInt}, {Name: "s2", Type: relation.KindInt},
		{Name: "s3", Type: relation.KindInt}}, "s1")
}

func paperPlan(t testing.TB, annR, annS, annT vdp.Annotation) *vdp.VDP {
	t.Helper()
	rpSchema := relation.MustSchema("R'", []relation.Attribute{
		{Name: "r1", Type: relation.KindInt}, {Name: "r2", Type: relation.KindInt},
		{Name: "r3", Type: relation.KindInt}}, "r1")
	spSchema := relation.MustSchema("S'", []relation.Attribute{
		{Name: "s1", Type: relation.KindInt}, {Name: "s2", Type: relation.KindInt}}, "s1")
	tSchema := relation.MustSchema("T", []relation.Attribute{
		{Name: "r1", Type: relation.KindInt}, {Name: "r3", Type: relation.KindInt},
		{Name: "s1", Type: relation.KindInt}, {Name: "s2", Type: relation.KindInt}})
	if annR == nil {
		annR = vdp.AllMaterialized(rpSchema)
	}
	if annS == nil {
		annS = vdp.AllMaterialized(spSchema)
	}
	if annT == nil {
		annT = vdp.AllMaterialized(tSchema)
	}
	v, err := vdp.New(
		&vdp.Node{Name: "R", Schema: rSchema(), Source: "db1"},
		&vdp.Node{Name: "S", Schema: sSchema(), Source: "db2"},
		&vdp.Node{Name: "R'", Schema: rpSchema, Ann: annR,
			Def: vdp.SPJ{Inputs: []vdp.SPJInput{{Rel: "R"}},
				Where: algebra.Eq(algebra.A("r4"), algebra.CInt(100)),
				Proj:  []string{"r1", "r2", "r3"}}},
		&vdp.Node{Name: "S'", Schema: spSchema, Ann: annS,
			Def: vdp.SPJ{Inputs: []vdp.SPJInput{{Rel: "S"}},
				Where: algebra.Lt(algebra.A("s3"), algebra.CInt(50)),
				Proj:  []string{"s1", "s2"}}},
		&vdp.Node{Name: "T", Schema: tSchema, Ann: annT, Export: true,
			Def: vdp.SPJ{Inputs: []vdp.SPJInput{{Rel: "R'"}, {Rel: "S'"}},
				JoinCond: algebra.Eq(algebra.A("r2"), algebra.A("s1")),
				Proj:     []string{"r1", "r3", "s1", "s2"}}},
	)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func newEnv(t testing.TB, annR, annS, annT vdp.Annotation) *testEnv {
	t.Helper()
	clk := &clock.Logical{}
	db1 := source.NewDB("db1", clk)
	db2 := source.NewDB("db2", clk)
	r := relation.NewSet(rSchema())
	r.Insert(relation.T(1, 10, 5, 100))
	r.Insert(relation.T(2, 10, 120, 100))
	r.Insert(relation.T(3, 20, 7, 100))
	r.Insert(relation.T(4, 30, 9, 50))
	s := relation.NewSet(sSchema())
	s.Insert(relation.T(10, 1, 20))
	s.Insert(relation.T(20, 2, 40))
	s.Insert(relation.T(30, 3, 80))
	if err := db1.LoadRelation(r); err != nil {
		t.Fatal(err)
	}
	if err := db2.LoadRelation(s); err != nil {
		t.Fatal(err)
	}
	v := paperPlan(t, annR, annS, annT)
	rec := trace.NewRecorder()
	med, err := New(Config{
		VDP:      v,
		Sources:  map[string]SourceConn{"db1": LocalSource{DB: db1}, "db2": LocalSource{DB: db2}},
		Clock:    clk,
		Recorder: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	ConnectLocal(med, db1)
	ConnectLocal(med, db2)
	if err := med.Initialize(); err != nil {
		t.Fatal(err)
	}
	return &testEnv{clk: clk, db1: db1, db2: db2, med: med, rec: rec, vdp_: v}
}

// groundTruth evaluates the full view from current source states.
func (e *testEnv) groundTruth(t testing.TB) map[string]*relation.Relation {
	t.Helper()
	leaves := map[string]*relation.Relation{}
	r, err := e.db1.Current("R")
	if err != nil {
		t.Fatal(err)
	}
	s, err := e.db2.Current("S")
	if err != nil {
		t.Fatal(err)
	}
	leaves["R"], leaves["S"] = r, s
	states, err := e.vdp_.EvalAll(vdp.ResolverFromCatalog(leaves))
	if err != nil {
		t.Fatal(err)
	}
	return states
}

func TestInitializePopulatesStores(t *testing.T) {
	e := newEnv(t, nil, nil, nil)
	truth := e.groundTruth(t)
	for _, name := range []string{"R'", "S'", "T"} {
		got := e.med.StoreSnapshot(name)
		if got == nil || !got.Equal(truth[name]) {
			t.Errorf("%s store != ground truth:\n%v\nwant\n%s", name, got, truth[name])
		}
	}
	if e.med.StoreSnapshot("R") != nil {
		t.Errorf("leaves must not be stored")
	}
	if err := e.med.Initialize(); err == nil {
		t.Errorf("double initialize must fail")
	}
}

func TestContributorClassification(t *testing.T) {
	// Fully materialized: both sources are materialized-contributors.
	e := newEnv(t, nil, nil, nil)
	if e.med.Contributor("db1") != MaterializedContributor || e.med.Contributor("db2") != MaterializedContributor {
		t.Errorf("fully materialized plan: %v %v", e.med.Contributor("db1"), e.med.Contributor("db2"))
	}
	// R' virtual: db1 reaches R' (virtual) and T (materialized) → hybrid.
	rp := relation.MustSchema("R'", []relation.Attribute{
		{Name: "r1", Type: relation.KindInt}, {Name: "r2", Type: relation.KindInt},
		{Name: "r3", Type: relation.KindInt}}, "r1")
	e2 := newEnv(t, vdp.AllVirtual(rp), nil, nil)
	if e2.med.Contributor("db1") != HybridContributor {
		t.Errorf("db1 should be hybrid: %v", e2.med.Contributor("db1"))
	}
	// Everything virtual: both sources virtual-contributors.
	sp := relation.MustSchema("S'", []relation.Attribute{
		{Name: "s1", Type: relation.KindInt}, {Name: "s2", Type: relation.KindInt}}, "s1")
	tS := relation.MustSchema("T", []relation.Attribute{
		{Name: "r1", Type: relation.KindInt}, {Name: "r3", Type: relation.KindInt},
		{Name: "s1", Type: relation.KindInt}, {Name: "s2", Type: relation.KindInt}})
	e3 := newEnv(t, vdp.AllVirtual(rp), vdp.AllVirtual(sp), vdp.AllVirtual(tS))
	if e3.med.Contributor("db1") != VirtualContributor || e3.med.Contributor("db2") != VirtualContributor {
		t.Errorf("fully virtual plan: %v %v", e3.med.Contributor("db1"), e3.med.Contributor("db2"))
	}
}

func TestExample21FullyMaterialized(t *testing.T) {
	e := newEnv(t, nil, nil, nil)

	// Updates flow through the queue into the store with no polling.
	d := delta.New()
	d.Insert("R", relation.T(5, 20, 11, 100))
	e.db1.MustApply(d)
	d2 := delta.New()
	d2.Delete("S", relation.T(10, 1, 20))
	d2.Insert("S", relation.T(40, 4, 10))
	e.db2.MustApply(d2)

	pollsBefore := e.med.Stats().SourcePolls
	if ran, err := e.med.RunUpdateTransaction(); err != nil || !ran {
		t.Fatalf("update txn: %v %v", ran, err)
	}
	if e.med.Stats().SourcePolls != pollsBefore {
		t.Errorf("fully materialized support must not poll sources")
	}
	truth := e.groundTruth(t)
	for _, name := range []string{"R'", "S'", "T"} {
		if got := e.med.StoreSnapshot(name); !got.Equal(truth[name]) {
			t.Errorf("%s after update:\n%swant\n%s", name, got, truth[name])
		}
	}
	// Queue drained; second run is a no-op.
	if ran, err := e.med.RunUpdateTransaction(); err != nil || ran {
		t.Errorf("empty queue should not run: %v %v", ran, err)
	}

	// Query fast path.
	res, err := e.med.QueryOpts("T", []string{"r1", "s1"}, nil, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := projectSelectLocal(truth["T"], "T", []string{"r1", "s1"}, nil)
	if !res.Answer.Equal(want) {
		t.Errorf("query answer:\n%swant\n%s", res.Answer, want)
	}
	if res.Polled != 0 || res.KeyBased {
		t.Errorf("fast path must not poll: %+v", res)
	}
}

func TestExample22VirtualAuxiliary(t *testing.T) {
	// R' virtual (Example 2.2): ΔR propagates with no polling; ΔS requires
	// polling db1 to reconstruct R'.
	rp := relation.MustSchema("R'", []relation.Attribute{
		{Name: "r1", Type: relation.KindInt}, {Name: "r2", Type: relation.KindInt},
		{Name: "r3", Type: relation.KindInt}}, "r1")
	e := newEnv(t, vdp.AllVirtual(rp), nil, nil)

	// ΔR: cheap path.
	d := delta.New()
	d.Insert("R", relation.T(5, 20, 11, 100))
	e.db1.MustApply(d)
	polls := e.med.Stats().SourcePolls
	if _, err := e.med.RunUpdateTransaction(); err != nil {
		t.Fatal(err)
	}
	if e.med.Stats().SourcePolls != polls {
		t.Errorf("ΔR with virtual R' must not poll (rule #1 needs only S')")
	}
	truth := e.groundTruth(t)
	if got := e.med.StoreSnapshot("T"); !got.Equal(truth["T"]) {
		t.Errorf("T after ΔR:\n%swant\n%s", got, truth["T"])
	}
	if e.med.StoreSnapshot("R'") != nil {
		t.Errorf("virtual R' must not be stored")
	}

	// ΔS: expensive path — the mediator must poll db1 for R'.
	d2 := delta.New()
	d2.Insert("S", relation.T(40, 4, 10))
	e.db2.MustApply(d2)
	polls = e.med.Stats().SourcePolls
	if _, err := e.med.RunUpdateTransaction(); err != nil {
		t.Fatal(err)
	}
	if e.med.Stats().SourcePolls != polls+1 {
		t.Errorf("ΔS with virtual R' must poll db1 once, polls %d -> %d", polls, e.med.Stats().SourcePolls)
	}
	truth = e.groundTruth(t)
	if got := e.med.StoreSnapshot("T"); !got.Equal(truth["T"]) {
		t.Errorf("T after ΔS:\n%swant\n%s", got, truth["T"])
	}
}

func TestEagerCompensation(t *testing.T) {
	// Example 2.2 configuration. Commit to R but do NOT run an update
	// transaction; then force a poll of db1 (via ΔS processing). The
	// queued ΔR must be compensated away, and the subsequent transaction
	// must still converge to ground truth.
	rp := relation.MustSchema("R'", []relation.Attribute{
		{Name: "r1", Type: relation.KindInt}, {Name: "r2", Type: relation.KindInt},
		{Name: "r3", Type: relation.KindInt}}, "r1")
	e := newEnv(t, vdp.AllVirtual(rp), nil, nil)

	// Both deltas land in the same queue snapshot: ΔR joins the new S
	// tuple, and R gets a deletion too.
	d := delta.New()
	d.Insert("R", relation.T(5, 40, 11, 100))
	d.Delete("R", relation.T(1, 10, 5, 100))
	e.db1.MustApply(d)
	d2 := delta.New()
	d2.Insert("S", relation.T(40, 4, 10))
	e.db2.MustApply(d2)

	if _, err := e.med.RunUpdateTransaction(); err != nil {
		t.Fatal(err)
	}
	truth := e.groundTruth(t)
	if got := e.med.StoreSnapshot("T"); !got.Equal(truth["T"]) {
		t.Errorf("ECA transaction diverged:\n%swant\n%s", got, truth["T"])
	}
	// The new pair must be present: R(5,40,..) ⋈ S(40,4,..) → (5,11,40,4).
	if !e.med.StoreSnapshot("T").Contains(relation.T(5, 11, 40, 4)) {
		t.Errorf("cross-delta row missing:\n%s", e.med.StoreSnapshot("T"))
	}
}

func TestEagerCompensationQueryPath(t *testing.T) {
	// Hybrid T (s2 virtual), everything else materialized. Commit to db2
	// without processing; a query touching s2 polls db2, and compensation
	// must roll the answer back to ref′ — i.e. the answer must match the
	// LAST PROCESSED state, not the current one.
	e := newEnv(t, nil, nil, vdp.Ann([]string{"r1", "r3", "s1"}, []string{"s2"}))

	before := e.groundTruth(t)["T"]
	d := delta.New()
	d.Delete("S", relation.T(10, 1, 20))
	d.Insert("S", relation.T(10, 99, 20)) // change s2 for s1=10
	e.db2.MustApply(d)

	res, err := e.med.QueryOpts("T", []string{"r1", "s2"}, nil, QueryOptions{KeyBased: KeyBasedOff})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := projectSelectLocal(before, "T", []string{"r1", "s2"}, nil)
	if !res.Answer.Equal(want) {
		t.Errorf("ECA query answer must reflect ref′:\n%swant\n%s", res.Answer, want)
	}
	// After processing the update, the query sees the new value.
	if _, err := e.med.RunUpdateTransaction(); err != nil {
		t.Fatal(err)
	}
	res2, err := e.med.QueryOpts("T", []string{"r1", "s2"}, nil, QueryOptions{KeyBased: KeyBasedOff})
	if err != nil {
		t.Fatal(err)
	}
	after := e.groundTruth(t)["T"]
	want2, _ := projectSelectLocal(after, "T", []string{"r1", "s2"}, nil)
	if !res2.Answer.Equal(want2) {
		t.Errorf("post-transaction answer:\n%swant\n%s", res2.Answer, want2)
	}
}

func TestExample23HybridQueries(t *testing.T) {
	// T hybrid [r1^m, r3^v, s1^m, s2^v]; R', S' fully materialized.
	e := newEnv(t, nil, nil, vdp.Ann([]string{"r1", "s1"}, []string{"r3", "s2"}))
	truth := e.groundTruth(t)

	// Materialized-only query: served from the store, no polls.
	res, err := e.med.QueryOpts("T", []string{"r1", "s1"}, nil, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := projectSelectLocal(truth["T"], "T", []string{"r1", "s1"}, nil)
	if !res.Answer.Equal(want) || res.Polled != 0 {
		t.Errorf("materialized query: %+v\n%s", res, res.Answer)
	}

	// Virtual-attribute query: r3 needed. R' is materialized, so no
	// polling is needed either way; both constructions must agree.
	for _, mode := range []KeyBasedMode{KeyBasedOff, KeyBasedForce} {
		res, err := e.med.QueryOpts("T", []string{"r3", "s1"},
			algebra.Lt(algebra.A("r3"), algebra.CInt(100)), QueryOptions{KeyBased: mode})
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		want, _ := projectSelectLocal(truth["T"], "T", []string{"r3", "s1"},
			algebra.Lt(algebra.A("r3"), algebra.CInt(100)))
		if !res.Answer.Equal(want) {
			t.Errorf("mode %v:\n%swant\n%s", mode, res.Answer, want)
		}
		if mode == KeyBasedForce && !res.KeyBased {
			t.Errorf("forced key-based not used")
		}
	}
}

func TestHybridWithVirtualChildrenKeyBasedWins(t *testing.T) {
	// Example 2.3's full setting: R' and S' fully virtual, T hybrid. A
	// query for {r3, s1} standardly polls BOTH sources (R' for r3 and the
	// join, S' for s1... s1 is materialized in T but standard
	// construction rebuilds T from children). Key-based uses store(T) ⋈
	// R' and polls only db1.
	rp := relation.MustSchema("R'", []relation.Attribute{
		{Name: "r1", Type: relation.KindInt}, {Name: "r2", Type: relation.KindInt},
		{Name: "r3", Type: relation.KindInt}}, "r1")
	sp := relation.MustSchema("S'", []relation.Attribute{
		{Name: "s1", Type: relation.KindInt}, {Name: "s2", Type: relation.KindInt}}, "s1")
	e := newEnv(t, vdp.AllVirtual(rp), vdp.AllVirtual(sp), vdp.Ann([]string{"r1", "s1"}, []string{"r3", "s2"}))
	truth := e.groundTruth(t)
	want, _ := projectSelectLocal(truth["T"], "T", []string{"r3", "s1"}, nil)

	// Standard: polls both sources.
	res, err := e.med.QueryOpts("T", []string{"r3", "s1"}, nil, QueryOptions{KeyBased: KeyBasedOff})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Answer.Equal(want) {
		t.Errorf("standard:\n%swant\n%s", res.Answer, want)
	}
	if res.Polled != 2 {
		t.Errorf("standard construction should poll 2 sources, polled %d", res.Polled)
	}

	// Key-based (auto should choose it): polls only db1.
	res2, err := e.med.QueryOpts("T", []string{"r3", "s1"}, nil, QueryOptions{KeyBased: KeyBasedAuto})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.KeyBased {
		t.Fatalf("auto mode should pick key-based construction here")
	}
	if !res2.Answer.Equal(want) {
		t.Errorf("key-based:\n%swant\n%s", res2.Answer, want)
	}
	if res2.Polled != 1 {
		t.Errorf("key-based construction should poll 1 source, polled %d", res2.Polled)
	}
}

func TestQueryConditionOnUnprojectedAttr(t *testing.T) {
	// Regression: a condition referencing an attribute outside the
	// projection must not widen the answer schema (the requirement closes
	// over condition attributes internally, but the answer is the
	// caller's projection exactly). Exercise the virtual path, the
	// key-based path, and the fast path.
	rp := relation.MustSchema("R'", []relation.Attribute{
		{Name: "r1", Type: relation.KindInt}, {Name: "r2", Type: relation.KindInt},
		{Name: "r3", Type: relation.KindInt}}, "r1")
	cond := algebra.Lt(algebra.A("s2"), algebra.CInt(99)) // s2 NOT projected

	for _, mode := range []KeyBasedMode{KeyBasedOff, KeyBasedForce} {
		e := newEnv(t, vdp.AllVirtual(rp), nil, vdp.Ann([]string{"r1", "s1"}, []string{"r3", "s2"}))
		res, err := e.med.QueryOpts("T", []string{"r1", "r3"}, cond, QueryOptions{KeyBased: mode})
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if res.Answer.Schema().Arity() != 2 {
			t.Fatalf("mode %v: answer widened to %s", mode, res.Answer.Schema())
		}
		truth := e.groundTruth(t)["T"]
		want, _ := projectSelectLocal(truth, "T", []string{"r1", "r3"}, cond)
		if !res.Answer.Equal(want) {
			t.Errorf("mode %v:\n%swant\n%s", mode, res.Answer, want)
		}
	}
	// Fast path variant.
	e := newEnv(t, nil, nil, nil)
	res, err := e.med.QueryOpts("T", []string{"r1"}, cond, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Answer.Schema().Arity() != 1 {
		t.Errorf("fast path widened to %s", res.Answer.Schema())
	}
}

func TestQueryErrors(t *testing.T) {
	e := newEnv(t, nil, nil, nil)
	if _, err := e.med.Query("R'", nil, nil); err == nil {
		t.Errorf("non-export query must fail")
	}
	if _, err := e.med.Query("NOPE", nil, nil); err == nil {
		t.Errorf("unknown export must fail")
	}
	if _, err := e.med.Query("T", []string{"zz"}, nil); err == nil {
		t.Errorf("unknown attribute must fail")
	}
	if _, err := e.med.QuerySQL("SELECT r1 FROM T JOIN X ON a = b"); err == nil {
		t.Errorf("join queries are not supported")
	}
	if _, err := e.med.QuerySQL("garbage"); err == nil {
		t.Errorf("parse errors propagate")
	}
	if _, err := e.med.QuerySQL("SELECT r1 FROM T WHERE s1 = 10 UNION SELECT r1 FROM T"); err == nil {
		t.Errorf("set-op queries are not supported")
	}
}

func TestQuerySQL(t *testing.T) {
	e := newEnv(t, nil, nil, nil)
	got, err := e.med.QuerySQL("SELECT r1, s1 FROM T WHERE s1 = 10")
	if err != nil {
		t.Fatal(err)
	}
	if got.Card() != 2 {
		t.Errorf("answer = %s", got)
	}
}

func TestUninitializedOperations(t *testing.T) {
	clk := &clock.Logical{}
	db1 := source.NewDB("db1", clk)
	db1.LoadRelation(relation.NewSet(rSchema()))
	db2 := source.NewDB("db2", clk)
	db2.LoadRelation(relation.NewSet(sSchema()))
	med, err := New(Config{
		VDP:     paperPlan(t, nil, nil, nil),
		Sources: map[string]SourceConn{"db1": LocalSource{DB: db1}, "db2": LocalSource{DB: db2}},
		Clock:   clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := med.Query("T", nil, nil); err == nil {
		t.Errorf("query before initialize must fail")
	}
	if _, err := med.RunUpdateTransaction(); err == nil {
		t.Errorf("update before initialize must fail")
	}
}

func TestConfigErrors(t *testing.T) {
	clk := &clock.Logical{}
	if _, err := New(Config{Clock: clk}); err == nil {
		t.Errorf("missing VDP")
	}
	if _, err := New(Config{VDP: paperPlan(t, nil, nil, nil)}); err == nil {
		t.Errorf("missing clock")
	}
	if _, err := New(Config{VDP: paperPlan(t, nil, nil, nil), Clock: clk,
		Sources: map[string]SourceConn{}}); err == nil {
		t.Errorf("missing source connections")
	}
}

func TestHybridLeafParentExportQueries(t *testing.T) {
	// Regression: a hybrid EXPORTED leaf-parent (single-input view over a
	// leaf) crashed the key-based planner, which proposed the LEAF itself
	// as the supplying child. All key-based modes must work.
	clk := &clock.Logical{}
	db := source.NewDB("db", clk)
	schema := relation.MustSchema("R", []relation.Attribute{
		{Name: "r1", Type: relation.KindInt}, {Name: "r3", Type: relation.KindInt}}, "r1")
	r := relation.NewSet(schema)
	r.Insert(relation.T(1, 5))
	r.Insert(relation.T(2, 120))
	db.LoadRelation(r)
	vs := relation.MustSchema("V", []relation.Attribute{
		{Name: "r1", Type: relation.KindInt}, {Name: "r3", Type: relation.KindInt}}, "r1")
	plan, err := vdp.New(
		&vdp.Node{Name: "R", Schema: schema, Source: "db"},
		&vdp.Node{Name: "V", Schema: vs, Export: true,
			Ann: vdp.Ann([]string{"r1"}, []string{"r3"}),
			Def: vdp.SPJ{Inputs: []vdp.SPJInput{{Rel: "R"}}, Proj: []string{"r1", "r3"}}},
	)
	if err != nil {
		t.Fatal(err)
	}
	med, err := New(Config{
		VDP:     plan,
		Sources: map[string]SourceConn{"db": LocalSource{DB: db}},
		Clock:   clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	ConnectLocal(med, db)
	if err := med.Initialize(); err != nil {
		t.Fatal(err)
	}
	cond := algebra.Lt(algebra.A("r3"), algebra.CInt(100))
	for _, mode := range []KeyBasedMode{KeyBasedAuto, KeyBasedOff, KeyBasedForce} {
		res, err := med.QueryOpts("V", []string{"r1", "r3"}, cond, QueryOptions{KeyBased: mode})
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if res.Answer.Card() != 1 || !res.Answer.Contains(relation.T(1, 5)) {
			t.Fatalf("mode %v: %s", mode, res.Answer)
		}
		if res.KeyBased {
			t.Errorf("mode %v: key-based must not apply to leaf children", mode)
		}
	}
}
