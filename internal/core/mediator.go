// Package core implements the Squirrel integration mediator (§4, Fig. 3) —
// the paper's primary contribution. A Mediator owns:
//
//   - a versioned snapshot store (internal/store) holding the materialized
//     portion of every annotated VDP node (full relations for fully
//     materialized nodes, attribute projections for hybrid nodes, nothing
//     for virtual nodes) as a sequence of immutable published versions;
//   - an update queue fed by source-database announcements;
//   - the Incremental Update Processor (IUP, §6.4): the Kernel Algorithm
//     plus the general three-phase algorithm that materializes needed
//     virtual data before propagating;
//   - the Query Processor (QP) and Virtual Attribute Processor (VAP,
//     §6.3), including Eager Compensation when polling hybrid
//     contributors and key-based construction of temporaries
//     (Example 2.3).
//
// Update transactions keep the paper's sequential transaction model: one
// at a time, each building the next store version copy-on-write and
// publishing it in a single atomic swap. Query transactions pin a
// published version and run entirely outside the update mutex — purely
// materialized queries are lock-free while the IUP runs; VAP-polling
// queries coordinate only on the queue lock, for Eager Compensation
// against the pinned version's ref′. All methods are safe for concurrent
// use.
package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"squirrel/internal/clock"
	"squirrel/internal/metrics"
	"squirrel/internal/relation"
	"squirrel/internal/source"
	"squirrel/internal/store"
	"squirrel/internal/trace"
	"squirrel/internal/vdp"
)

// ContributorKind classifies how a source database relates to the mediator
// (§4).
type ContributorKind uint8

const (
	// MaterializedContributor sources contribute only to materialized
	// data; they must announce updates and are never polled.
	MaterializedContributor ContributorKind = iota
	// HybridContributor sources contribute to both portions; they announce
	// updates and may be polled (with Eager Compensation).
	HybridContributor
	// VirtualContributor sources contribute only virtual data; they are
	// polled and need no active capabilities (legacy systems).
	VirtualContributor
)

// String names the kind.
func (k ContributorKind) String() string {
	switch k {
	case MaterializedContributor:
		return "materialized-contributor"
	case HybridContributor:
		return "hybrid-contributor"
	case VirtualContributor:
		return "virtual-contributor"
	}
	return "unknown"
}

// SourceConn is the mediator's connection to one source database: snapshot
// queries packaged as a single transaction. The returned time is the
// serialization instant of the read (the answer is exactly the source
// state at that instant). Implementations must preserve FIFO ordering
// between announcements and answers from the same source.
type SourceConn interface {
	Name() string
	QueryMulti(specs []source.QuerySpec) ([]*relation.Relation, clock.Time, error)
}

// LocalSource adapts an in-process source.DB to SourceConn.
type LocalSource struct {
	DB *source.DB
}

// Name implements SourceConn.
func (l LocalSource) Name() string { return l.DB.Name() }

// QueryMulti implements SourceConn.
func (l LocalSource) QueryMulti(specs []source.QuerySpec) ([]*relation.Relation, clock.Time, error) {
	return l.DB.QueryMulti(specs)
}

// Stats aggregates mediator-side operation counters for the experiments.
type Stats struct {
	UpdateTxns      int
	QueryTxns       int
	AtomsPropagated int // delta atoms applied across all nodes
	SourcePolls     int // QueryMulti round trips
	TuplesPolled    int // tuples received from sources
	TempsBuilt      int // temporary relations constructed
	KeyBasedTemps   int // temporaries built via key-based construction
	QueueHighWater  int
	// CurrentVersion is the sequence number of the published store version
	// (0 before initialization); VersionsPublished counts publishes by
	// this mediator instance.
	CurrentVersion    uint64
	VersionsPublished uint64
	// Fault-boundary counters (see health.go): failed poll attempts,
	// retries after them, polls fast-failed by an open breaker, queries
	// answered from stale cached polls, announcement gaps detected
	// (including proactive quarantines), and resyncs completed.
	PollFailures     int
	PollRetries      int
	BreakerFastFails int
	DegradedQueries  int
	GapsDetected     int
	Resyncs          int
	// ResyncsStuck counts sources currently flagged ResyncStuck (their
	// consecutive overtaken-resync count reached the threshold); see
	// SourceHealth.ResyncStuck for the per-source condition.
	ResyncsStuck int
	// Staged-kernel counters (parallel.go): stages that had dirty nodes
	// to process, dirty nodes processed across those stages, and update
	// transactions retried because a concurrent resync published while
	// the transaction was polling outside the store mutex. All zero when
	// PropagateWorkers is 0 (serial kernel) — except UpdateTxnRetries,
	// which the serial path can also record.
	KernelStages     int
	KernelStageNodes int
	UpdateTxnRetries int
	// AnnotationSwitches counts attribute materialization flips applied by
	// re-annotation transactions (reannotate.go).
	AnnotationSwitches int
	// WALBarrierErrs counts barrier records the attached commit log failed
	// to persist (commitlog.go). Non-zero is survivable — replay's
	// version-continuity check still stops recovery at the unlogged
	// publish — but it means the log lost its early-stop marker.
	WALBarrierErrs int
	// Subscription counters (subscribe.go): live subscriptions, frames
	// delivered to consumers (snapshot and delta), frames folded into a
	// slow subscriber's queue tail under backpressure, queues dropped for
	// exceeding their MaxLag staleness bound, and snapshot resyncs forced
	// on subscribers (barriers, continuity gaps, expired resume points).
	ActiveSubscribers  int
	SubFramesDelivered int
	SubCoalesces       int
	SubLagDrops        int
	SubSnapshotResyncs int
	// Sources is the per-source health view (breaker state, quarantine,
	// last contact).
	Sources map[string]SourceHealth
}

// counters are the mediator's operation counters in atomic form, so query
// transactions running concurrently outside the update mutex can bump them
// without coordination.
type counters struct {
	updateTxns         atomic.Int64
	queryTxns          atomic.Int64
	atomsPropagated    atomic.Int64
	sourcePolls        atomic.Int64
	tuplesPolled       atomic.Int64
	tempsBuilt         atomic.Int64
	keyBasedTemps      atomic.Int64
	pollFailures       atomic.Int64
	pollRetries        atomic.Int64
	breakerFastFails   atomic.Int64
	degradedQueries    atomic.Int64
	gapsDetected       atomic.Int64
	resyncs            atomic.Int64
	kernelStages       atomic.Int64
	kernelStageNodes   atomic.Int64
	txnRetries         atomic.Int64
	annotationSwitches atomic.Int64
	walBarrierErrs     atomic.Int64
	subFrames          atomic.Int64
	subCoalesces       atomic.Int64
	subLagDrops        atomic.Int64
	subResyncs         atomic.Int64
}

// Config assembles a Mediator.
type Config struct {
	// VDP is the annotated plan; required.
	VDP *vdp.VDP
	// Sources maps every source database named in the VDP to a connection.
	Sources map[string]SourceConn
	// Clock stamps mediator transactions; it must be the integration
	// environment's global clock for the correctness checkers to apply.
	Clock clock.Clock
	// Recorder, if non-nil, receives the transaction trace.
	Recorder *trace.Recorder
	// Resilience tunes the per-source fault boundary (health.go). The
	// zero value means fail-fast: one attempt, no timeout, no breaker.
	Resilience ResilienceConfig
	// PropagateWorkers selects the kernel executor for update
	// transactions. 0 (the default) runs the serial reference kernel —
	// the ground truth the differential oracle checks the staged kernel
	// against. Any n >= 1 runs the staged kernel (parallel.go): the
	// topological order is partitioned into antichain stages and each
	// stage's node maintenance and VAP polls run on at most n worker
	// goroutines (n = 1 exercises the staged path single-threaded).
	PropagateWorkers int
	// Metrics, if non-nil, is the registry the mediator instruments
	// itself into (observe.go) — share one registry across components to
	// scrape them from a single endpoint. Nil means a private registry,
	// still reachable via Mediator.Metrics().
	Metrics *metrics.Registry
}

// versionPin tracks how many in-flight query transactions are reading a
// published version. While a version is pinned, processed announcements
// newer than its ref′ are retained (in done) so Eager Compensation can
// roll polls back to the pinned state.
type versionPin struct {
	v    *store.Version
	refs int
}

// planEpoch is one annotated plan together with everything derived from
// the annotation: the contributor classification and the first store
// version sequence the plan governs. Re-annotation (reannotate.go) pushes
// a new epoch onto an intrusive chain; queries resolve the epoch that
// matches their pinned version via planFor, so a transaction never mixes
// one epoch's plan with another epoch's store layout. Epochs whose
// versions can no longer be pinned are pruned (pruneEpochsLocked).
type planEpoch struct {
	v            *vdp.VDP
	contributors map[string]ContributorKind
	// since is the first store version seq this epoch's annotation
	// applies to (0 for the construction epoch).
	since uint64
	// prev links to the epoch governing versions before since. Atomic so
	// lock-free readers can walk the chain while the pruner unlinks
	// tails.
	prev atomic.Pointer[planEpoch]
}

// Mediator is a Squirrel integration mediator.
type Mediator struct {
	// plan is the head of the epoch chain: the current annotated plan
	// plus the contributor classification derived from it. Swapped only
	// by Reannotate (under txnMu+mu+qmu) and Restore; read lock-free
	// everywhere else. Holders of txnMu or mu see a stable head.
	plan     atomic.Pointer[planEpoch]
	sources  map[string]SourceConn
	clk      clock.Clock
	recorder *trace.Recorder

	// txnMu serializes RunUpdateTransaction end to end: one update
	// transaction at a time, held across its VAP polls and kernel run.
	// Nothing else takes it. Lock order: txnMu before mu before qmu.
	txnMu sync.Mutex
	// commitLog, when non-nil, makes every update-transaction commit
	// durable before its version is published (commitlog.go). Guarded by
	// mu: every caller — commit, barrier publishers, SetCommitLog — holds
	// it.
	commitLog CommitLog

	// mu guards the store's write side (Begin/Publish and the state they
	// must agree with). Initialize, Restore, and ResyncSource hold it for
	// their whole run; RunUpdateTransaction holds it only to snapshot the
	// queue + begin the builder and again to commit, so a slow source
	// poll no longer blocks resyncs or anything else that needs mu. A
	// commit whose builder base is no longer the current version (a
	// resync published meanwhile) is discarded and the transaction
	// retried. Query transactions do NOT take mu: they pin a published
	// version from vstore instead.
	mu     sync.Mutex
	vstore *store.Store
	// workers is Config.PropagateWorkers, fixed at construction.
	workers int

	leafSchemas map[string]*relation.Schema

	// viewInit is written (under mu) before the first version is
	// published; readers access it only after observing a published
	// version, so the atomic publish provides the happens-before edge.
	viewInit clock.Time

	stats counters

	// qmu guards the queue, the ref′ bookkeeping, and version pins; it is
	// the ONLY lock OnAnnouncement takes, so a source database can deliver
	// an announcement from inside its own commit while the mediator is
	// polling it. Lock order: mu before qmu; never qmu before mu — qmu is
	// a leaf lock, and no other lock is ever acquired while holding it.
	qmu   sync.Mutex
	queue []source.Announcement // announced, not yet processed
	// done retains processed announcements while some pinned version may
	// still need them: a polling query pinned to version V compensates
	// polls back to ref′(V), which requires every announcement with time
	// in (ref′(V)[src], poll instant] — including ones an update
	// transaction has already folded into a newer version.
	done           []source.Announcement
	pins           map[uint64]*versionPin // seq → pin
	lastProcessed  clock.Vector           // ref′: per announcing source
	initialized    bool
	queueHighWater int
	// announceCh is the group-commit wakeup: a buffered-1 signal sent
	// (non-blocking) whenever an announcement actually joins the queue,
	// so a batched runtime can sleep until work arrives instead of
	// polling on a period. Sends coalesce; receivers must re-check
	// QueueLen.
	announceCh chan struct{}
	// Fault-boundary bookkeeping, also under qmu: the latest instant each
	// source's state is known at, the last accepted announcement sequence
	// number per source (0 = adopt the next one seen), quarantine reasons,
	// the pen holding announcements that arrived while quarantined, and
	// the per-source resync barrier — compensation for a version whose
	// ref′[src] predates the barrier must fail, because the announcement
	// gap lost the deltas its window needs.
	lastContact   clock.Vector
	lastSeq       map[string]uint64
	quarantined   map[string]string
	gapPen        map[string][]source.Announcement
	resyncBarrier clock.Vector
	// resyncOvertaken counts consecutive ErrResyncOvertaken failures per
	// source (reset on success) — the basis of the ResyncStuck health
	// condition.
	resyncOvertaken map[string]int
	// capture marks sources whose announcements must be queued even
	// though every retained epoch classifies them as virtual
	// contributors: a re-annotation transaction that is about to make
	// the source announcing sets the flag before its backfill poll, so
	// no commit between the poll and the epoch swap can be lost.
	capture map[string]bool
	// refRing holds, per federated tier source, the time-to-base-
	// coordinates translation ring (feed.go). Under qmu.
	refRing map[string][]refMapEntry

	// feed, when non-nil, observes every publish from inside the commit
	// path (feed.go) — the export-as-source adapter hangs off it. Under
	// mu, like the publishes it orders with.
	feed CommitFeed

	// Per-source fault boundary (health.go). resil and health are fixed
	// at construction; sleep is the retry-backoff pause, replaceable in
	// tests.
	resil  ResilienceConfig
	health map[string]*sourceHealth
	sleep  func(time.Duration)

	// cmu guards the raw poll cache for ServeStale degradation; a strict
	// leaf lock, never held while acquiring any other.
	cmu       sync.Mutex
	pollCache map[string]*cachedPoll

	// obs caches the metrics instruments (observe.go); fixed at
	// construction, never nil.
	obs *mediatorObs

	// subs is the push-delivery subscription registry (subscribe.go);
	// fixed at construction, never nil. Its lock nests strictly inside mu.
	subs *subRegistry
}

// New builds a mediator from the configuration. Call Initialize before
// querying.
func New(cfg Config) (*Mediator, error) {
	if cfg.VDP == nil {
		return nil, fmt.Errorf("core: config needs a VDP")
	}
	if cfg.Clock == nil {
		return nil, fmt.Errorf("core: config needs a clock")
	}
	m := &Mediator{
		sources:         make(map[string]SourceConn),
		clk:             cfg.Clock,
		recorder:        cfg.Recorder,
		vstore:          store.New(),
		pins:            make(map[uint64]*versionPin),
		lastProcessed:   make(clock.Vector),
		leafSchemas:     make(map[string]*relation.Schema),
		lastContact:     make(clock.Vector),
		lastSeq:         make(map[string]uint64),
		quarantined:     make(map[string]string),
		gapPen:          make(map[string][]source.Announcement),
		resyncBarrier:   make(clock.Vector),
		resyncOvertaken: make(map[string]int),
		capture:         make(map[string]bool),
		announceCh:      make(chan struct{}, 1),
		resil:           cfg.Resilience,
		workers:         cfg.PropagateWorkers,
	}
	m.plan.Store(&planEpoch{v: cfg.VDP, contributors: classifyContributors(cfg.VDP)})
	for _, s := range cfg.VDP.Sources() {
		conn, ok := cfg.Sources[s]
		if !ok {
			return nil, fmt.Errorf("core: no connection for source database %q", s)
		}
		m.sources[s] = conn
	}
	for _, leaf := range cfg.VDP.Leaves() {
		m.leafSchemas[leaf] = cfg.VDP.Node(leaf).Schema
	}
	m.initHealth()
	m.obs = newMediatorObs(cfg.Metrics, cfg.VDP)
	m.subs = newSubRegistry(m, cfg.VDP)
	return m, nil
}

// classifyContributors implements the §4 taxonomy by reachability: a
// source contributes to the materialized (virtual) portion iff some node
// reachable from one of its leaves has a materialized (virtual) attribute.
func classifyContributors(v *vdp.VDP) map[string]ContributorKind {
	out := make(map[string]ContributorKind)
	for _, src := range v.Sources() {
		mat, virt := false, false
		reach := make(map[string]bool)
		var walk func(name string)
		walk = func(name string) {
			if reach[name] {
				return
			}
			reach[name] = true
			for _, p := range v.Parents(name) {
				walk(p)
			}
		}
		for _, leaf := range v.LeavesOf(src) {
			walk(leaf)
		}
		for name := range reach {
			n := v.Node(name)
			if n.IsLeaf() {
				continue
			}
			for _, a := range n.Schema.AttrNames() {
				if n.Ann.IsMaterialized(a) {
					mat = true
				} else {
					virt = true
				}
			}
		}
		switch {
		case mat && virt:
			out[src] = HybridContributor
		case virt:
			out[src] = VirtualContributor
		default:
			out[src] = MaterializedContributor
		}
	}
	return out
}

// epoch returns the current plan epoch (the chain head). Lock-free; the
// head is stable for holders of txnMu or mu, because every epoch swap
// happens under both.
func (m *Mediator) epoch() *planEpoch { return m.plan.Load() }

// curVDP returns the current epoch's plan. See epoch for stability.
func (m *Mediator) curVDP() *vdp.VDP { return m.epoch().v }

// planFor resolves the epoch governing store version seq: the newest
// epoch whose since ≤ seq. Returns nil when that epoch has been pruned
// (its versions can no longer be pinned) — callers retry with a fresh
// version. Lock-free.
func (m *Mediator) planFor(seq uint64) *planEpoch {
	for ep := m.plan.Load(); ep != nil; ep = ep.prev.Load() {
		if ep.since <= seq {
			return ep
		}
	}
	return nil
}

// announcingAnywhere reports whether any retained epoch classifies src as
// an announcing (non-virtual) contributor. While an old epoch is
// retained, a query pinned to one of its versions may still need to
// compensate src's polls, so src's announcements keep flowing into the
// queue even after a re-annotation made it virtual. Lock-free.
func (m *Mediator) announcingAnywhere(src string) bool {
	for ep := m.plan.Load(); ep != nil; ep = ep.prev.Load() {
		if k, ok := ep.contributors[src]; ok && k != VirtualContributor {
			return true
		}
	}
	return false
}

// pruneEpochsLocked unlinks epochs no pinnable version can resolve
// anymore: the newest epoch whose since is ≤ every pinned (and the
// current) version's seq covers everything reachable, so its prev chain
// is dropped. Caller holds qmu.
func (m *Mediator) pruneEpochsLocked() {
	cur := m.vstore.Current()
	if cur == nil {
		return
	}
	minSeq := cur.Seq()
	for _, p := range m.pins {
		if s := p.v.Seq(); s < minSeq {
			minSeq = s
		}
	}
	for ep := m.plan.Load(); ep != nil; ep = ep.prev.Load() {
		if ep.since <= minSeq {
			ep.prev.Store(nil)
			return
		}
	}
}

// Contributor returns the current classification of a source database
// (§4). Re-annotation can change it; use the QueryResult's version to
// attribute an answer to the plan that produced it.
func (m *Mediator) Contributor(src string) ContributorKind {
	return m.epoch().contributors[src]
}

// VDP returns the mediator's current plan (the head epoch's — Reannotate
// swaps it).
func (m *Mediator) VDP() *vdp.VDP { return m.curVDP() }

// Annotations returns a deep copy of the current plan's per-node
// annotations — the live annotation an adaptive mediator has drifted to,
// as opposed to the one it was constructed with.
func (m *Mediator) Annotations() map[string]vdp.Annotation {
	return m.curVDP().Annotations()
}

// Stats returns a copy of the operation counters. The transaction counters
// are atomics, the queue-side numbers come from queueStats (which takes
// only the leaf lock qmu), and the version counters come from the store —
// no lock is ever held while acquiring another.
func (m *Mediator) Stats() Stats {
	s := Stats{
		UpdateTxns:         int(m.stats.updateTxns.Load()),
		QueryTxns:          int(m.stats.queryTxns.Load()),
		AtomsPropagated:    int(m.stats.atomsPropagated.Load()),
		SourcePolls:        int(m.stats.sourcePolls.Load()),
		TuplesPolled:       int(m.stats.tuplesPolled.Load()),
		TempsBuilt:         int(m.stats.tempsBuilt.Load()),
		KeyBasedTemps:      int(m.stats.keyBasedTemps.Load()),
		PollFailures:       int(m.stats.pollFailures.Load()),
		PollRetries:        int(m.stats.pollRetries.Load()),
		BreakerFastFails:   int(m.stats.breakerFastFails.Load()),
		DegradedQueries:    int(m.stats.degradedQueries.Load()),
		GapsDetected:       int(m.stats.gapsDetected.Load()),
		Resyncs:            int(m.stats.resyncs.Load()),
		KernelStages:       int(m.stats.kernelStages.Load()),
		KernelStageNodes:   int(m.stats.kernelStageNodes.Load()),
		UpdateTxnRetries:   int(m.stats.txnRetries.Load()),
		AnnotationSwitches: int(m.stats.annotationSwitches.Load()),
		WALBarrierErrs:     int(m.stats.walBarrierErrs.Load()),
		SubFramesDelivered: int(m.stats.subFrames.Load()),
		SubCoalesces:       int(m.stats.subCoalesces.Load()),
		SubLagDrops:        int(m.stats.subLagDrops.Load()),
		SubSnapshotResyncs: int(m.stats.subResyncs.Load()),
	}
	s.ActiveSubscribers = m.subs.active()
	s.Sources = m.sourceHealthStats()
	for _, sh := range s.Sources {
		if sh.ResyncStuck {
			s.ResyncsStuck++
		}
	}
	s.QueueHighWater = m.queueStats()
	if v := m.vstore.Current(); v != nil {
		s.CurrentVersion = v.Seq()
	}
	s.VersionsPublished = m.vstore.VersionsPublished()
	return s
}

// queueStats reads the queue-side counters. It takes qmu alone — the
// documented lock order (mu before qmu, qmu strictly a leaf) means callers
// must not hold qmu already and may hold mu or nothing.
func (m *Mediator) queueStats() (highWater int) {
	m.qmu.Lock()
	defer m.qmu.Unlock()
	return m.queueHighWater
}

// StoreVersion returns the sequence number of the currently published
// store version (0 before initialization). Every query answer is
// attributable to exactly one version; QueryResult.Version names it.
func (m *Mediator) StoreVersion() uint64 {
	if v := m.vstore.Current(); v != nil {
		return v.Seq()
	}
	return 0
}

// CurrentVersion returns the currently published store version (nil
// before initialization). A version is immutable: holding the pointer
// pins that state for as long as the caller needs it, at zero cost to
// writers. The relations it exposes are shared and must not be modified.
func (m *Mediator) CurrentVersion() *store.Version { return m.vstore.Current() }

// ViewInit returns t_view_init (zero until Initialize).
func (m *Mediator) ViewInit() clock.Time {
	if m.vstore.Current() == nil {
		return 0
	}
	return m.viewInit
}

// pinVersion pins the current version for a polling query transaction:
// while pinned, processed announcements newer than the version's ref′ are
// retained for Eager Compensation. Returns nil before initialization.
// Callers must release with unpinVersion.
func (m *Mediator) pinVersion() *store.Version {
	m.qmu.Lock()
	defer m.qmu.Unlock()
	v := m.vstore.Current()
	if v == nil {
		return nil
	}
	p := m.pins[v.Seq()]
	if p == nil {
		p = &versionPin{v: v}
		m.pins[v.Seq()] = p
	}
	p.refs++
	return v
}

// unpinVersion releases a pin taken by pinVersion and prunes the retained
// announcement log.
func (m *Mediator) unpinVersion(v *store.Version) {
	m.qmu.Lock()
	defer m.qmu.Unlock()
	p := m.pins[v.Seq()]
	if p == nil {
		return
	}
	p.refs--
	if p.refs <= 0 {
		delete(m.pins, v.Seq())
		m.pruneDoneLocked()
		m.pruneEpochsLocked()
	}
}

// pruneDoneLocked drops retained announcements no pinned version can still
// need. Caller holds qmu.
func (m *Mediator) pruneDoneLocked() {
	if len(m.done) == 0 {
		return
	}
	if len(m.pins) == 0 {
		m.done = nil
		return
	}
	oldLen := len(m.done)
	kept := m.done[:0]
	for _, a := range m.done {
		for _, p := range m.pins {
			if a.Time > p.v.RefOf(a.Source) {
				kept = append(kept, a)
				break
			}
		}
	}
	m.done = trimAnnouncements(kept, oldLen)
}

// trimAnnouncements zeroes the dropped tail of the slice's backing array
// (so the dropped announcements' deltas become collectible) and
// reallocates when capacity greatly exceeds length — without this, a
// one-time announcement burst would pin its full backing array forever.
// oldLen is the slice's length before it was resliced down.
func trimAnnouncements(s []source.Announcement, oldLen int) []source.Announcement {
	if oldLen > len(s) {
		tail := s[len(s):oldLen]
		for i := range tail {
			tail[i] = source.Announcement{}
		}
	}
	if cap(s) > 64 && cap(s) >= 4*len(s) {
		out := make([]source.Announcement, len(s))
		copy(out, s)
		return out
	}
	return s
}

// storeSchema returns the schema of a node's materialized portion.
func storeSchema(n *vdp.Node) (*relation.Schema, error) {
	mats := n.MaterializedAttrs()
	if len(mats) == 0 {
		return nil, nil
	}
	return n.Schema.Project(n.Name, mats)
}

// Initialize populates the materialized store by polling every source for
// its current leaf states and evaluating the VDP bottom-up, then publishes
// the result as store version 1. Announcements already subscribed are
// deduplicated against the poll times, so it is safe (and required for
// consistency) to connect announcement feeds before initializing.
func (m *Mediator) Initialize() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.qmu.Lock()
	inited := m.initialized
	m.qmu.Unlock()
	if inited {
		return fmt.Errorf("core: mediator already initialized")
	}
	// Poll every source for the full contents of its leaves, one
	// transaction per source, through the fault boundary (retry/backoff,
	// breaker, per-attempt deadline — no-ops under the zero config).
	v := m.curVDP()
	leafStates := make(map[string]*relation.Relation)
	for src := range m.sources {
		leaves := v.LeavesOf(src)
		if len(leaves) == 0 {
			continue
		}
		specs := make([]source.QuerySpec, len(leaves))
		for i, leaf := range leaves {
			specs[i] = source.QuerySpec{Rel: leaf}
		}
		answers, asOf, err := m.pollSource(src, specs, true)
		if err != nil {
			return fmt.Errorf("core: initializing from %s: %w", src, err)
		}
		m.stats.sourcePolls.Add(1)
		for i, leaf := range leaves {
			leafStates[leaf] = answers[i]
			m.stats.tuplesPolled.Add(int64(answers[i].Len()))
		}
		m.qmu.Lock()
		m.lastProcessed[src] = asOf
		m.qmu.Unlock()
	}
	states, err := v.EvalAll(vdp.ResolverFromCatalog(leafStates))
	if err != nil {
		return fmt.Errorf("core: initial evaluation: %w", err)
	}
	b := m.vstore.Begin()
	for _, name := range v.NonLeaves() {
		n := v.Node(name)
		schema, err := storeSchema(n)
		if err != nil {
			return err
		}
		if schema == nil {
			continue // fully virtual: nothing stored
		}
		positions, err := n.Schema.Positions(schema.AttrNames())
		if err != nil {
			return err
		}
		sem := n.Semantics()
		if n.Hybrid() {
			// A projection of a set node can carry duplicates.
			sem = relation.Bag
		}
		rel := relation.New(schema, sem)
		states[name].Each(func(t relation.Tuple, c int) bool {
			rel.Add(t.Project(positions), c)
			return true
		})
		b.Set(name, rel)
	}
	// Drop queued announcements already reflected in the initial poll,
	// and publish version 1 while holding qmu so pinners always observe a
	// version consistent with the queue state.
	m.qmu.Lock()
	oldLen := len(m.queue)
	kept := m.queue[:0]
	for _, a := range m.queue {
		if a.Time > m.lastProcessed[a.Source] {
			kept = append(kept, a)
		}
	}
	m.queue = trimAnnouncements(kept, oldLen)
	// A gap detected among pre-initialization announcements is covered by
	// the full poll: reconcile each quarantined stream against its poll
	// instant (sources whose pen outruns the poll stay quarantined for a
	// later ResyncSource).
	for src := range m.quarantined {
		m.resolveSourceLocked(src, m.lastProcessed[src])
	}
	m.initialized = true
	m.viewInit = m.clk.Now()
	m.vstore.Publish(b, m.lastProcessed.Clone(), m.viewInit)
	m.qmu.Unlock()
	m.obs.reg.Emit(metrics.Event{Type: metrics.EventPublish, Subject: "v1", Fields: map[string]int64{"version": 1}})
	return nil
}

// OnAnnouncement enqueues a source update announcement. Wire this to
// source.DB.Subscribe (see ConnectLocal) or to a network feed. It takes
// only the queue lock, so sources can announce while the mediator is
// mid-transaction (even while it is polling them).
//
// Announcements from virtual contributors are dropped: per §4 those
// sources need no active capabilities, nothing materialized depends on
// them, and their polls are served (uncompensated) from their current
// state. Two adaptive-annotation exceptions keep the stream flowing: a
// re-annotation transaction capturing the source (it is about to become
// announcing), and a retained older epoch that still classifies it as
// announcing (pinned queries may need its announcements to compensate).
// Sequence checking: announcements carrying sequence numbers (Seq > 0)
// must arrive densely per source. A duplicate (Seq ≤ last seen) is
// dropped; a hole (FirstSeq > last+1) proves announcements were lost, so
// the source is quarantined — its stream is untrusted until ResyncSource
// re-derives the materialized state from a snapshot poll. While
// quarantined, arrivals are penned rather than queued.
func (m *Mediator) OnAnnouncement(a source.Announcement) {
	m.qmu.Lock()
	defer m.qmu.Unlock()
	// Count every arrival — including ones dropped below — so the
	// adaptive profile's per-source update shares see the full stream.
	if c := m.obs.announcements[a.Source]; c != nil {
		c.Inc()
	}
	if !m.capture[a.Source] && !m.announcingAnywhere(a.Source) {
		return
	}
	if a.Time > m.lastContact[a.Source] {
		m.lastContact[a.Source] = a.Time
	}
	// A federated tier's announcement carries its ref′ in base-source
	// coordinates: record the translation point even when the
	// announcement itself is penned or dropped below — the mapping
	// describes the tier's published state at that time regardless.
	if a.Reflect != nil {
		m.noteBaseReflectLocked(a.Source, a.Time, a.Reflect)
	}
	// A barrier announcement says the tier published a state NOT derived
	// from its previous announcement by a delta (a resync or a
	// re-annotation downstream): the delta stream cannot be trusted
	// across it, exactly like a detected gap, so quarantine and let the
	// next flush snapshot-resync the tier. The barrier consumed a
	// sequence number downstream, so even a receiver that misses this
	// message detects the hole when the next commit announces.
	if a.Barrier != "" {
		m.quarantineLocked(a.Source, "downstream barrier: "+a.Barrier)
		return
	}
	if m.quarantined[a.Source] != "" {
		m.penAppendLocked(a)
		return
	}
	if a.Seq != 0 {
		last := m.lastSeq[a.Source]
		first := a.FirstSeq
		if first == 0 {
			first = a.Seq
		}
		if last != 0 {
			if a.Seq <= last {
				return // duplicate / replayed announcement
			}
			if first > last+1 {
				m.quarantineLocked(a.Source, fmt.Sprintf("announcement gap: expected seq %d, got %d", last+1, first))
				m.penAppendLocked(a)
				return
			}
		}
		m.lastSeq[a.Source] = a.Seq
	}
	if m.initialized && a.Time <= m.lastProcessed[a.Source] {
		return // already reflected by a poll
	}
	m.queue = append(m.queue, a)
	if len(m.queue) > m.queueHighWater {
		m.queueHighWater = len(m.queue)
	}
	m.obs.queueLen.Set(int64(len(m.queue)))
	select {
	case m.announceCh <- struct{}{}:
	default:
	}
}

// AnnounceSignal returns a channel that receives a (coalesced) signal
// whenever an announcement joins the queue. Consumers must treat it as a
// wakeup, not a count: re-check QueueLen after each receive.
func (m *Mediator) AnnounceSignal() <-chan struct{} { return m.announceCh }

// QueueLen reports the number of pending announcements.
func (m *Mediator) QueueLen() int {
	m.qmu.Lock()
	defer m.qmu.Unlock()
	return len(m.queue)
}

// ConnectLocal subscribes the mediator to an in-process source database
// and registers the connection. Call before Initialize.
func ConnectLocal(m *Mediator, db *source.DB) {
	db.Subscribe(m.OnAnnouncement)
}

// StoreSnapshot returns a clone of a node's materialized portion in the
// current version (nil for fully virtual nodes or before initialization).
// Lock-free: it reads the published version. Intended for inspection and
// tests.
func (m *Mediator) StoreSnapshot(node string) *relation.Relation {
	v := m.vstore.Current()
	if v == nil {
		return nil
	}
	r := v.Rel(node)
	if r == nil {
		return nil
	}
	return r.Clone()
}

// LastProcessed returns a copy of the ref′ vector.
func (m *Mediator) LastProcessed() clock.Vector {
	m.qmu.Lock()
	defer m.qmu.Unlock()
	return m.lastProcessed.Clone()
}
