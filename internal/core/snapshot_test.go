package core

import (
	"testing"

	"squirrel/internal/clock"
	"squirrel/internal/delta"
	"squirrel/internal/relation"
	"squirrel/internal/source"
	"squirrel/internal/trace"
	"squirrel/internal/vdp"
)

// restoreEnv builds a second mediator over the SAME source databases and
// restores the snapshot into it, wiring announcement feeds with replay.
func restoreEnv(t *testing.T, e *testEnv, snap *StateSnapshot) *Mediator {
	t.Helper()
	med2, err := New(Config{
		VDP:      e.vdp_,
		Sources:  map[string]SourceConn{"db1": LocalSource{DB: e.db1}, "db2": LocalSource{DB: e.db2}},
		Clock:    e.clk,
		Recorder: trace.NewRecorder(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ConnectLocal(med2, e.db1)
	ConnectLocal(med2, e.db2)
	if err := med2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	// Catch up on everything committed after the snapshot's ref′.
	lp := med2.LastProcessed()
	e.db1.ReplaySince(lp["db1"], med2.OnAnnouncement)
	e.db2.ReplaySince(lp["db2"], med2.OnAnnouncement)
	return med2
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	e := newEnv(t, nil, nil, nil)
	// Advance past the initial state.
	d := delta.New()
	d.Insert("R", relation.T(5, 20, 11, 100))
	e.db1.MustApply(d)
	if _, err := e.med.RunUpdateTransaction(); err != nil {
		t.Fatal(err)
	}
	snap, err := e.med.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// The mediator "goes down"; the sources keep committing.
	d2 := delta.New()
	d2.Insert("S", relation.T(40, 4, 10))
	e.db2.MustApply(d2)
	d3 := delta.New()
	d3.Delete("R", relation.T(1, 10, 5, 100))
	e.db1.MustApply(d3)

	med2 := restoreEnv(t, e, snap)
	for {
		ran, err := med2.RunUpdateTransaction()
		if err != nil {
			t.Fatal(err)
		}
		if !ran {
			break
		}
	}
	truth := e.groundTruth(t)
	if got := med2.StoreSnapshot("T"); !got.Equal(truth["T"]) {
		t.Fatalf("restored mediator diverged:\n%swant\n%s", got, truth["T"])
	}
	// Queries work and report sane reflect vectors.
	res, err := med2.QueryOpts("T", []string{"r1", "s1"}, nil, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reflect.AllAtOrBefore(res.Committed) {
		t.Errorf("chronology after restore")
	}
}

// A snapshot is a COPY of the durable state: mutating what it hands out
// must never reach back into the mediator's published store or its ref′
// vector.
func TestSnapshotIsolatedFromMediator(t *testing.T) {
	e := newEnv(t, nil, nil, nil)
	snap, err := e.med.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	before := e.med.StoreSnapshot("T")
	lpBefore := e.med.LastProcessed()

	// Trash everything the snapshot handed out.
	for _, rel := range snap.Store {
		rel.Clear()
	}
	for src := range snap.LastProcessed {
		snap.LastProcessed[src] = 999999
	}

	if got := e.med.StoreSnapshot("T"); !got.Equal(before) {
		t.Fatalf("mutating a snapshot reached the mediator store:\n%swant\n%s", got, before)
	}
	lpAfter := e.med.LastProcessed()
	for src, want := range lpBefore {
		if lpAfter[src] != want {
			t.Errorf("mutating snapshot.LastProcessed reached ref′: %s = %d, want %d",
				src, lpAfter[src], want)
		}
	}
	// The mediator still answers correctly.
	truth := e.groundTruth(t)
	if got := e.med.StoreSnapshot("T"); !got.Equal(truth["T"]) {
		t.Errorf("store diverged from ground truth after snapshot mutation")
	}
}

// Restore must deep-copy the snapshot it installs: the caller keeps
// ownership and may reuse or mutate it (e.g. restoring the same snapshot
// into a second mediator).
func TestRestoreIsolatedFromCaller(t *testing.T) {
	e := newEnv(t, nil, nil, nil)
	snap, err := e.med.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	med2 := restoreEnv(t, e, snap)
	before := med2.StoreSnapshot("T")
	lpBefore := med2.LastProcessed()

	for _, rel := range snap.Store {
		rel.Clear()
	}
	for src := range snap.LastProcessed {
		snap.LastProcessed[src] = 999999
	}

	if got := med2.StoreSnapshot("T"); !got.Equal(before) {
		t.Fatalf("mutating the snapshot after Restore reached the mediator:\n%swant\n%s", got, before)
	}
	lpAfter := med2.LastProcessed()
	for src, want := range lpBefore {
		if lpAfter[src] != want {
			t.Errorf("mutating snapshot.LastProcessed after Restore reached ref′: %s = %d, want %d",
				src, lpAfter[src], want)
		}
	}
}

func TestSnapshotReplayDedup(t *testing.T) {
	// Over-replay (from time zero) must be harmless: the dedup drops
	// announcements at or before ref′.
	e := newEnv(t, nil, nil, nil)
	d := delta.New()
	d.Insert("R", relation.T(5, 20, 11, 100))
	e.db1.MustApply(d)
	if _, err := e.med.RunUpdateTransaction(); err != nil {
		t.Fatal(err)
	}
	snap, err := e.med.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	med2 := restoreEnv(t, e, snap)
	// Replay EVERYTHING again.
	e.db1.ReplaySince(0, med2.OnAnnouncement)
	e.db2.ReplaySince(0, med2.OnAnnouncement)
	for {
		ran, err := med2.RunUpdateTransaction()
		if err != nil {
			t.Fatal(err)
		}
		if !ran {
			break
		}
	}
	truth := e.groundTruth(t)
	if got := med2.StoreSnapshot("T"); !got.Equal(truth["T"]) {
		t.Fatalf("over-replay corrupted the store:\n%swant\n%s", got, truth["T"])
	}
}

func TestSnapshotHybridStores(t *testing.T) {
	e := newEnv(t, nil, nil, vdp.Ann([]string{"r1", "s1"}, []string{"r3", "s2"}))
	snap, err := e.med.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := snap.Store["T"]; !ok {
		t.Fatalf("hybrid store missing from snapshot")
	}
	if snap.Store["T"].Schema().Arity() != 2 {
		t.Errorf("hybrid snapshot should hold the materialized projection: %s", snap.Store["T"].Schema())
	}
	med2 := restoreEnv(t, e, snap)
	res, err := med2.QueryOpts("T", []string{"r1", "s1"}, nil, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Answer.Card() == 0 {
		t.Errorf("restored hybrid store empty")
	}
}

func TestSnapshotErrors(t *testing.T) {
	// Snapshot of an uninitialized mediator.
	clk := &clock.Logical{}
	db1 := source.NewDB("db1", clk)
	db1.LoadRelation(relation.NewSet(rSchema()))
	db2 := source.NewDB("db2", clk)
	db2.LoadRelation(relation.NewSet(sSchema()))
	med, err := New(Config{
		VDP:     paperPlan(t, nil, nil, nil),
		Sources: map[string]SourceConn{"db1": LocalSource{DB: db1}, "db2": LocalSource{DB: db2}},
		Clock:   clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := med.Snapshot(); err == nil {
		t.Errorf("snapshot before initialize must fail")
	}
	if err := med.Restore(nil); err == nil {
		t.Errorf("nil snapshot must fail")
	}
	if err := med.Restore(&StateSnapshot{Store: map[string]*relation.Relation{}}); err == nil {
		t.Errorf("missing stores must fail")
	}
	// Restore into an initialized mediator.
	e := newEnv(t, nil, nil, nil)
	snap, _ := e.med.Snapshot()
	if err := e.med.Restore(snap); err == nil {
		t.Errorf("restore into initialized mediator must fail")
	}
	// Snapshot with an unknown node.
	bad, _ := e.med.Snapshot()
	bad.Store["GHOST"] = relation.NewBag(rSchema().Rename("GHOST"))
	if err := med.Restore(bad); err == nil {
		t.Errorf("unknown store must fail")
	}
	// Shape mismatch.
	bad2, _ := e.med.Snapshot()
	bad2.Store["T"] = relation.NewBag(relation.MustSchema("T",
		[]relation.Attribute{{Name: "x", Type: relation.KindString}}))
	if err := med.Restore(bad2); err == nil {
		t.Errorf("shape mismatch must fail")
	}
}
