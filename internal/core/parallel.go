package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"squirrel/internal/algebra"
	"squirrel/internal/delta"
	"squirrel/internal/metrics"
	"squirrel/internal/relation"
	"squirrel/internal/store"
	"squirrel/internal/vdp"
)

// The staged kernel: the Kernel Algorithm's topological order, executed
// stage by stage over vdp.Stages()'s antichain partition on a bounded
// worker pool. Within a stage no node depends on another, so once all
// contributions from earlier stages are merged (they are — every child
// lies in a strictly earlier stage), the stage's node maintenance is
// mutually independent EXCEPT for the sibling-state discipline: a rule
// fired for node X must resolve a same-stage sibling Z to its new state
// iff Z precedes X in the topological order, exactly as the serial kernel
// would. The stage executor preserves that discipline without any
// execution-order dependence by splitting each stage into two barriers:
//
//	setup (serial)    reserve per-node state: capture each dirty node's
//	                  pre-state (temporary and/or store relation) and
//	                  clone its post-state slots. Builder and temps-map
//	                  bookkeeping is single-writer, so it happens here.
//	phase 1 (pool)    apply each node's delta to its OWN post-state
//	                  slots. Distinct nodes touch distinct relations.
//	phase 2 (pool)    fire each node's rules, resolving same-stage
//	                  siblings from the captured pre/post snapshots by
//	                  topological index; contributions accumulate
//	                  per-node.
//	merge (serial)    install post-state temporaries and smash the
//	                  contributions into pending, in stage order.
//
// Because every resolver read is a captured immutable snapshot, the
// result is independent of worker scheduling — the staged kernel replays
// the serial kernel's discipline verbatim and must produce byte-identical
// stores (the differential oracle in randplan_test.go drives both over
// random plans and asserts exactly that).

// stageNode is one dirty node's work in the current stage.
type stageNode struct {
	name string
	node *vdp.Node
	topo int
	dn   *delta.RelDelta

	// Pre/post state snapshots. pre* relations are read-only (the base
	// version's relation, or the VAP temporary as built); post* are this
	// node's exclusively-owned clones, mutated only by its own phase-1
	// worker. Nil when the node has no such state (leaves have neither).
	preTemp   *relation.Relation
	postTemp  *relation.Relation
	preStore  *relation.Relation
	postStore *relation.Relation

	// captured is the store-schema-projected ΔR this node applied to its
	// store portion in phase 1 (nil when the node stores nothing).
	// Written by the node's own worker, harvested in the serial merge —
	// the subscription registry ships it (subscribe.go).
	captured *delta.RelDelta

	contribs []stageContrib
}

type stageContrib struct {
	parent string
	d      *delta.RelDelta
}

// kernelStaged is the staged form of (*Mediator).kernel. workers bounds
// the pool; workers == 1 runs the same staged code single-threaded.
func (m *Mediator) kernelStaged(b *store.Builder, combined *delta.Delta, temps *tempResult, workers int) (map[string]*delta.RelDelta, error) {
	var tempRels map[string]*relation.Relation
	if temps != nil {
		tempRels = temps.temps
	}
	base := resolverFor(b, tempRels)
	pending := make(map[string]*delta.RelDelta)
	captured := make(map[string]*delta.RelDelta)
	v := m.curVDP() // stable: the staged kernel runs under txnMu

	for stageIdx, stage := range v.Stages() {
		// Collect the stage's dirty nodes, in topological order.
		var work []*stageNode
		for _, name := range stage {
			n := v.Node(name)
			var dn *delta.RelDelta
			if n.IsLeaf() {
				dn = combined.Get(name)
			} else {
				dn = pending[name]
			}
			if dn == nil || dn.IsEmpty() {
				continue
			}
			work = append(work, &stageNode{name: name, node: n, topo: v.TopoIndex(name), dn: dn})
		}
		if len(work) == 0 {
			continue
		}
		stageStart := time.Now()

		// Setup: reserve state serially — Builder.Mutable and the temps
		// map are single-writer structures; afterwards each worker only
		// touches relations its node exclusively owns.
		for _, w := range work {
			if w.node.IsLeaf() {
				continue // leaves hold no mediator state
			}
			if temp, ok := tempRels[w.name]; ok {
				w.preTemp = temp
				w.postTemp = temp.Clone()
			}
			w.preStore = b.Rel(w.name)
			w.postStore = b.Mutable(w.name)
		}

		// Phase 1: apply each node's delta to its own post-state.
		applyStart := time.Now()
		if err := runBounded(workers, len(work), func(i int) error {
			return m.applyStageDelta(work[i], temps)
		}); err != nil {
			return nil, err
		}
		m.obs.stageApply.ObserveSince(applyStart)

		// Phase 2: fire the rules against the captured snapshots.
		rulesStart := time.Now()
		byName := make(map[string]*stageNode, len(work))
		for _, w := range work {
			byName[w.name] = w
		}
		if err := runBounded(workers, len(work), func(i int) error {
			w := work[i]
			resolve := stageResolver(w, byName, base)
			for _, parent := range v.Parents(w.name) {
				if !v.MaterializationRelevant(parent) {
					continue
				}
				contrib, err := v.Propagate(parent, w.name, w.dn, resolve)
				if err != nil {
					return fmt.Errorf("core: rule (%s, %s): %w", parent, w.name, err)
				}
				w.contribs = append(w.contribs, stageContrib{parent: parent, d: contrib})
			}
			return nil
		}); err != nil {
			return nil, err
		}
		m.obs.stageRules.ObserveSince(rulesStart)

		// Merge: install post-state temporaries so later stages resolve
		// them, and smash the contributions (additive, hence
		// order-independent; merged in stage order for good measure).
		for _, w := range work {
			if w.postTemp != nil {
				tempRels[w.name] = w.postTemp
			}
			if w.captured != nil {
				captured[w.name] = w.captured
			}
			for _, c := range w.contribs {
				if acc, ok := pending[c.parent]; ok {
					acc.Smash(c.d)
				} else {
					pending[c.parent] = c.d
				}
			}
		}
		m.stats.kernelStages.Add(1)
		m.stats.kernelStageNodes.Add(int64(len(work)))
		m.obs.stageTotal.ObserveSince(stageStart)
		m.obs.reg.Emit(metrics.Event{
			Type: metrics.EventStage, Dur: time.Since(stageStart),
			Fields: map[string]int64{"stage": int64(stageIdx), "nodes": int64(len(work)), "workers": int64(workers)},
		})
	}
	return captured, nil
}

// applyStageDelta processes one node's own state: apply Δ to its
// temporary clone (through the temporary's selection, which commutes with
// apply, §6.2) and to the materialized portion's clone — the same two
// writes the serial kernel performs in place.
func (m *Mediator) applyStageDelta(w *stageNode, temps *tempResult) error {
	if w.node.IsLeaf() {
		return nil
	}
	if w.postTemp != nil {
		toApply := w.dn
		if cond := temps.conds[w.name]; !algebra.IsTrue(cond) {
			filtered, err := w.dn.Select(func(t relation.Tuple) (bool, error) {
				return algebra.EvalPred(cond, w.node.Schema, t)
			})
			if err != nil {
				return err
			}
			toApply = filtered
		}
		narrowed, err := projectRelDelta(toApply, w.node.Schema, w.postTemp.Schema())
		if err != nil {
			return err
		}
		if err := narrowed.ApplyTo(w.postTemp, true); err != nil {
			return fmt.Errorf("core: applying Δ%s to temporary: %w", w.name, err)
		}
	}
	if w.postStore != nil {
		narrowed, err := projectRelDelta(w.dn, w.node.Schema, w.postStore.Schema())
		if err != nil {
			return err
		}
		if err := narrowed.ApplyTo(w.postStore, true); err != nil {
			return fmt.Errorf("core: applying Δ%s to store: %w", w.name, err)
		}
		w.captured = narrowed
	}
	return nil
}

// stageResolver resolves node states for rules fired on behalf of `me`:
// same-stage dirty nodes come from the captured snapshots — post-state if
// they precede me in the topological order (the serial kernel would have
// processed them already), pre-state otherwise (me included: a node's own
// rules see its pre-update state; self-join occurrence sequencing happens
// inside Propagate). Everything else falls back to the shared resolver —
// earlier stages' nodes are already merged (post), later stages' untouched
// (pre) — which phase 2 only reads.
func stageResolver(me *stageNode, stage map[string]*stageNode, fallback vdp.Resolver) vdp.Resolver {
	return func(name string) (*relation.Relation, error) {
		other, ok := stage[name]
		if !ok {
			return fallback(name)
		}
		var r *relation.Relation
		if other.topo < me.topo {
			if r = other.postTemp; r == nil {
				r = other.postStore
			}
		} else {
			if r = other.preTemp; r == nil {
				r = other.preStore
			}
		}
		if r == nil {
			return nil, fmt.Errorf("core: no temporary or materialized state for %q", name)
		}
		return r, nil
	}
}

// runBounded runs fn(0..n-1) on at most `workers` goroutines and returns
// the lowest-index error (deterministic regardless of scheduling).
// workers <= 1 degenerates to a plain loop with fail-fast.
func runBounded(workers, n int, fn func(int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
