package core

import (
	"fmt"
	"math/rand"
	"testing"

	"squirrel/internal/algebra"
	"squirrel/internal/checker"
	"squirrel/internal/clock"
	"squirrel/internal/delta"
	"squirrel/internal/relation"
	"squirrel/internal/source"
	"squirrel/internal/trace"
	"squirrel/internal/vdp"
)

// This file contains the randomized-plan soak: VDPs with random shapes
// (leaf-parents, multi-way joins, union and difference tops, self-joins),
// random annotations across the materialized/virtual/hybrid spectrum, and
// random workloads — checked for incremental-equals-recompute and for the
// §3 consistency definition on every run.

// randPlan carries a generated environment.
type randPlan struct {
	plan    *vdp.VDP
	dbs     map[string]*source.DB
	med     *Mediator
	rec     *trace.Recorder
	export  string
	clk     *clock.Logical
	domains map[string]int64 // per-leaf value domain size (join compatibility)
}

// buildRandomPlan generates a random valid annotated VDP over two sources
// and wires a mediator. Shapes covered: single leaf-parent export, 2–3-way
// join export, union export, difference export — each with randomized
// conditions, projections, and annotations.
func buildRandomPlan(t *testing.T, rng *rand.Rand) *randPlan {
	t.Helper()
	return buildRandomPlanWorkers(t, rng, 0)
}

// buildRandomPlanWorkers is buildRandomPlan with the kernel executor
// selected. It consumes rng identically for every workers value, so two
// calls with equally-seeded rngs produce byte-identical environments that
// differ only in the executor — the setup the differential oracle needs.
func buildRandomPlanWorkers(t *testing.T, rng *rand.Rand, workers int) *randPlan {
	t.Helper()
	clk := &clock.Logical{}
	nLeaves := 2 + rng.Intn(2) // 2 or 3 leaves
	var nodes []*vdp.Node
	dbs := map[string]*source.DB{}
	conns := map[string]SourceConn{}
	domains := map[string]int64{}

	leafNames := make([]string, nLeaves)
	for i := 0; i < nLeaves; i++ {
		src := fmt.Sprintf("db%d", i%2+1)
		if dbs[src] == nil {
			dbs[src] = source.NewDB(src, clk)
			conns[src] = LocalSource{DB: dbs[src]}
		}
		name := fmt.Sprintf("L%d", i)
		leafNames[i] = name
		// Attributes: key k_i, join attribute j_i, payloads p_i, q_i.
		schema := relation.MustSchema(name, []relation.Attribute{
			{Name: fmt.Sprintf("k%d", i), Type: relation.KindInt},
			{Name: fmt.Sprintf("j%d", i), Type: relation.KindInt},
			{Name: fmt.Sprintf("p%d", i), Type: relation.KindInt},
			{Name: fmt.Sprintf("q%d", i), Type: relation.KindInt},
		}, fmt.Sprintf("k%d", i))
		nodes = append(nodes, &vdp.Node{Name: name, Schema: schema, Source: src})
		domain := int64(4 + rng.Intn(8))
		domains[name] = domain
		// Initial population.
		rel := relation.NewSet(schema)
		for r := 0; r < 20+rng.Intn(30); r++ {
			rel.Insert(relation.T(int64(r+1), rng.Int63n(domain), rng.Int63n(50), rng.Int63n(3)))
		}
		if err := dbs[src].LoadRelation(rel); err != nil {
			t.Fatal(err)
		}
	}

	// Leaf-parents: π over all but maybe q_i, σ over q_i or none.
	lpNames := make([]string, nLeaves)
	for i, leaf := range leafNames {
		name := leaf + "'"
		lpNames[i] = name
		proj := []string{fmt.Sprintf("k%d", i), fmt.Sprintf("j%d", i), fmt.Sprintf("p%d", i)}
		var where algebra.Expr
		if rng.Intn(2) == 0 {
			where = algebra.Ne(algebra.A(fmt.Sprintf("q%d", i)), algebra.CInt(0))
		}
		parent := nodes[i]
		schema, err := parent.Schema.Project(name, proj)
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, &vdp.Node{
			Name: name, Schema: schema,
			Def: vdp.SPJ{Inputs: []vdp.SPJInput{{Rel: leaf}}, Where: where, Proj: proj},
			Ann: randomAnn(rng, schema),
		})
	}

	// Export top: pick a shape.
	shape := rng.Intn(4)
	export := "V"
	switch shape {
	case 0: // single-child π σ export over a leaf-parent (plus self-join sometimes)
		child := lpNames[rng.Intn(nLeaves)]
		childNode := findNode(nodes, child)
		proj := childNode.Schema.AttrNames()[:2]
		schema, err := childNode.Schema.Project(export, proj)
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, &vdp.Node{
			Name: export, Schema: schema, Export: true,
			Def: vdp.SPJ{Inputs: []vdp.SPJInput{{Rel: child}},
				Where: algebra.Ge(algebra.A(proj[1]), algebra.CInt(0)), Proj: proj},
			Ann: randomAnn(rng, schema),
		})
	case 1: // multi-way join over all leaf-parents on j attributes
		inputs := make([]vdp.SPJInput, nLeaves)
		var conds []algebra.Expr
		var proj []string
		var attrs []relation.Attribute
		for i, lp := range lpNames {
			inputs[i] = vdp.SPJInput{Rel: lp}
			if i > 0 {
				conds = append(conds, algebra.Eq(
					algebra.A(fmt.Sprintf("j%d", i-1)), algebra.A(fmt.Sprintf("j%d", i))))
			}
			proj = append(proj, fmt.Sprintf("k%d", i))
			attrs = append(attrs, relation.Attribute{Name: fmt.Sprintf("k%d", i), Type: relation.KindInt})
		}
		proj = append(proj, "p0")
		attrs = append(attrs, relation.Attribute{Name: "p0", Type: relation.KindInt})
		schema := relation.MustSchema(export, attrs)
		nodes = append(nodes, &vdp.Node{
			Name: export, Schema: schema, Export: true,
			Def: vdp.SPJ{Inputs: inputs, JoinCond: algebra.Conj(conds...), Proj: proj},
			Ann: randomAnn(rng, schema),
		})
	case 2, 3: // union or difference of the first two leaf-parents
		l, r := findNode(nodes, lpNames[0]), findNode(nodes, lpNames[1])
		lProj := []string{l.Schema.AttrNames()[1]} // j0
		rProj := []string{r.Schema.AttrNames()[1]} // j1
		// Branch projections map positionally onto the node schema; the
		// node's attribute is named after the LEFT branch attribute,
		// matching the no-renaming convention used elsewhere.
		schema := relation.MustSchema(export, []relation.Attribute{{Name: lProj[0], Type: relation.KindInt}})
		lb := vdp.Branch{Rel: l.Name, Proj: lProj,
			Where: algebra.Lt(algebra.A(l.Schema.AttrNames()[2]), algebra.CInt(40))}
		rb := vdp.Branch{Rel: r.Name, Proj: rProj}
		var def vdp.Def
		if shape == 2 {
			def = vdp.UnionDef{L: lb, R: rb}
		} else {
			def = vdp.DiffDef{L: lb, R: rb}
		}
		ann := randomAnn(rng, schema)
		nodes = append(nodes, &vdp.Node{Name: export, Schema: schema, Export: true, Def: def, Ann: ann})
	}

	// Any leaf-parent left maximal (not consumed by the chosen export
	// shape) becomes an export itself — §5.1 allows non-source nodes in
	// Export, and it gives the soak extra query targets.
	used := map[string]bool{}
	for _, n := range nodes {
		if n.Def == nil {
			continue
		}
		for _, c := range n.Def.Children() {
			used[c] = true
		}
	}
	for _, n := range nodes {
		if n.Def != nil && !used[n.Name] && !n.Export {
			n.Export = true
		}
	}
	plan, err := vdp.New(nodes...)
	if err != nil {
		t.Fatalf("generated plan invalid: %v\nshape=%d", err, shape)
	}
	rec := trace.NewRecorder()
	med, err := New(Config{VDP: plan, Sources: conns, Clock: clk, Recorder: rec, PropagateWorkers: workers})
	if err != nil {
		t.Fatal(err)
	}
	for _, db := range dbs {
		ConnectLocal(med, db)
	}
	if err := med.Initialize(); err != nil {
		t.Fatalf("initialize: %v\nplan:\n%s", err, plan)
	}
	return &randPlan{plan: plan, dbs: dbs, med: med, rec: rec, export: export, clk: clk, domains: domains}
}

func findNode(nodes []*vdp.Node, name string) *vdp.Node {
	for _, n := range nodes {
		if n.Name == name {
			return n
		}
	}
	return nil
}

// randomAnn picks an annotation uniformly over {all-m, all-v, random mix}.
func randomAnn(rng *rand.Rand, s *relation.Schema) vdp.Annotation {
	switch rng.Intn(3) {
	case 0:
		return vdp.AllMaterialized(s)
	case 1:
		return vdp.AllVirtual(s)
	}
	ann := make(vdp.Annotation, s.Arity())
	for _, a := range s.AttrNames() {
		if rng.Intn(2) == 0 {
			ann[a] = vdp.Materialized
		} else {
			ann[a] = vdp.Virtual
		}
	}
	return ann
}

// randomLeafCommit applies a random non-redundant transaction to one leaf.
func (rp *randPlan) randomLeafCommit(t *testing.T, rng *rand.Rand) {
	t.Helper()
	leaves := rp.plan.Leaves()
	leaf := leaves[rng.Intn(len(leaves))]
	src := rp.plan.Node(leaf).Source
	db := rp.dbs[src]
	cur, err := db.Current(leaf)
	if err != nil {
		t.Fatal(err)
	}
	d := delta.New()
	for i := 0; i < 1+rng.Intn(3); i++ {
		if rng.Intn(3) == 0 && cur.Len() > 0 {
			rows := cur.Rows()
			tp := rows[rng.Intn(len(rows))].Tuple
			if d.Rel(leaf).Count(tp) == 0 {
				d.Delete(leaf, tp)
				cur.Delete(tp)
			}
			continue
		}
		tp := relation.T(rng.Int63n(1<<40)+1000, rng.Int63n(rp.domains[leaf]), rng.Int63n(50), rng.Int63n(3))
		if cur.Count(tp) == 0 && d.Rel(leaf).Count(tp) == 0 {
			// Key uniqueness: huge random keys collide with negligible
			// probability; Apply would reject redundancy anyway.
			d.Insert(leaf, tp)
			cur.Insert(tp)
		}
	}
	if d.IsEmpty() {
		return
	}
	if _, err := db.Apply(d); err != nil {
		t.Fatal(err)
	}
}

// checkStores asserts every materialized portion equals projected
// recomputation over the current leaf states.
func (rp *randPlan) checkStores(t *testing.T) {
	t.Helper()
	leaves := map[string]*relation.Relation{}
	for _, leaf := range rp.plan.Leaves() {
		cur, err := rp.dbs[rp.plan.Node(leaf).Source].Current(leaf)
		if err != nil {
			t.Fatal(err)
		}
		leaves[leaf] = cur
	}
	truth, err := rp.plan.EvalAll(vdp.ResolverFromCatalog(leaves))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range rp.plan.NonLeaves() {
		n := rp.plan.Node(name)
		st := rp.med.StoreSnapshot(name)
		if n.FullyVirtual() {
			if st != nil {
				t.Fatalf("virtual node %s has a store", name)
			}
			continue
		}
		want, err := projectSelectLocal(truth[name], name, n.MaterializedAttrs(), nil)
		if err != nil {
			t.Fatal(err)
		}
		if !st.Equal(want) {
			t.Fatalf("node %s diverged\nplan:\n%s\nstore:\n%swant:\n%s", name, rp.plan, st, want)
		}
	}
}

// TestRandomPlansSoak is the flagship randomized test: 120 random plans,
// each driven by a random interleaving, each checked for store
// correctness and trace consistency.
func TestRandomPlansSoak(t *testing.T) {
	for seed := int64(0); seed < 120; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			rp := buildRandomPlan(t, rng)
			for step := 0; step < 20; step++ {
				switch op := rng.Intn(10); {
				case op < 5:
					rp.randomLeafCommit(t, rng)
				case op < 8:
					if _, err := rp.med.RunUpdateTransaction(); err != nil {
						t.Fatalf("step %d: %v\nplan:\n%s", step, err, rp.plan)
					}
				default:
					n := rp.plan.Node(rp.export)
					attrs := n.Schema.AttrNames()
					if rng.Intn(2) == 0 && len(attrs) > 1 {
						attrs = attrs[:1+rng.Intn(len(attrs)-1)]
					}
					mode := []KeyBasedMode{KeyBasedAuto, KeyBasedOff, KeyBasedForce}[rng.Intn(3)]
					if _, err := rp.med.QueryOpts(rp.export, attrs, nil, QueryOptions{KeyBased: mode}); err != nil {
						t.Fatalf("step %d query: %v\nplan:\n%s", step, err, rp.plan)
					}
				}
			}
			// Drain and verify stores.
			for {
				ran, err := rp.med.RunUpdateTransaction()
				if err != nil {
					t.Fatal(err)
				}
				if !ran {
					break
				}
			}
			rp.checkStores(t)
			// Verify the whole trace against the §3 definitions.
			env := checker.Environment{VDP: rp.plan, Sources: rp.dbs, Trace: rp.rec}
			if err := env.CheckConsistency(); err != nil {
				t.Fatalf("consistency: %v\nplan:\n%s", err, rp.plan)
			}
		})
	}
}
