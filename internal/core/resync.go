package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"squirrel/internal/clock"
	"squirrel/internal/metrics"
	"squirrel/internal/relation"
	"squirrel/internal/source"
	"squirrel/internal/store"
	"squirrel/internal/vdp"
)

// ErrResyncOvertaken classifies a resync failure: the snapshot poll
// completed, but announcements penned during the quarantine carry times
// past the poll instant, so the snapshot cannot vouch for the commits
// the gap may have lost after it. This is NOT a "source still down"
// failure — the source answered — and unlike one it will never succeed
// while the source keeps committing ahead of every poll; consecutive
// occurrences raise the ResyncStuck health condition. Test with
// errors.Is.
var ErrResyncOvertaken = errors.New("resync overtaken by newer penned announcements")

// Resync re-establishes materialized consistency for a source whose
// announcement stream broke (a detected sequence gap, or a transport
// reconnect that may have dropped announcements silently). Applying the
// post-gap deltas would be unsound — the materialized state would skip
// the lost commits forever — so the mediator instead re-derives every
// materialized node the source feeds from a fresh full snapshot poll,
// rolling the helper sources' answers back to the current ref′ with Eager
// Compensation so the rebuilt nodes agree exactly with the untouched
// ones.

// resyncClosure computes, for src: the non-leaf nodes with a materialized
// portion reachable from its leaves (the nodes to rebuild), the
// evaluation set (those nodes plus every descendant), and the leaves
// feeding that evaluation, sorted.
func resyncClosure(v *vdp.VDP, src string) (affected, needEval map[string]bool, leaves []string) {
	reach := make(map[string]bool)
	var up func(string)
	up = func(name string) {
		if reach[name] {
			return
		}
		reach[name] = true
		for _, p := range v.Parents(name) {
			up(p)
		}
	}
	for _, leaf := range v.LeavesOf(src) {
		up(leaf)
	}
	affected = make(map[string]bool)
	for name := range reach {
		n := v.Node(name)
		if !n.IsLeaf() && len(n.MaterializedAttrs()) > 0 {
			affected[name] = true
		}
	}
	needEval = make(map[string]bool)
	var down func(string)
	down = func(name string) {
		if needEval[name] {
			return
		}
		needEval[name] = true
		if v.Node(name).IsLeaf() {
			leaves = append(leaves, name)
			return
		}
		for _, c := range v.Children(name) {
			down(c)
		}
	}
	for name := range affected {
		down(name)
	}
	sort.Strings(leaves)
	return affected, needEval, leaves
}

// writeMaterialized stores the materialized projection of a node's full
// state into the builder (no-op for fully virtual nodes).
func writeMaterialized(b *store.Builder, n *vdp.Node, full *relation.Relation) error {
	schema, err := storeSchema(n)
	if err != nil {
		return err
	}
	if schema == nil {
		return nil // fully virtual: nothing stored
	}
	positions, err := n.Schema.Positions(schema.AttrNames())
	if err != nil {
		return err
	}
	sem := n.Semantics()
	if n.Hybrid() {
		// A projection of a set node can carry duplicates.
		sem = relation.Bag
	}
	rel := relation.New(schema, sem)
	full.Each(func(t relation.Tuple, c int) bool {
		rel.Add(t.Project(positions), c)
		return true
	})
	b.Set(n.Name, rel)
	return nil
}

// ResyncSource rebuilds every materialized node fed by src from a fresh
// full snapshot poll and lifts its quarantine. It runs as an update
// transaction (serialized under mu, published atomically). Safe to call
// on a healthy source (an idempotent repair); a no-op for virtual
// contributors, whose announcements the mediator never consumes.
//
// The helper sources' poll answers are rolled back to the current
// version's ref′ via Eager Compensation; this is always possible because
// every leaf below a materialized node belongs to an announcing source
// (classifyContributors: a source with materialized reach is never a
// virtual contributor). src's own answer is adopted uncompensated at its
// poll instant asOf, which becomes ref′[src]. In-flight queries pinned to
// pre-resync versions can no longer compensate src's polls — the gap lost
// the deltas their window needs — so compensate refuses them via the
// per-source resync barrier instead of answering wrong.
func (m *Mediator) ResyncSource(src string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.vstore.Current() == nil {
		return fmt.Errorf("core: mediator not initialized")
	}
	if _, ok := m.sources[src]; !ok {
		return fmt.Errorf("core: unknown source %q", src)
	}
	// The epoch is stable while mu is held: swaps happen under mu.
	v := m.curVDP()
	if m.epoch().contributors[src] == VirtualContributor {
		if !m.announcingAnywhere(src) {
			// A quarantine can survive a flip to virtual. Announcements
			// from a fully virtual source are dropped anyway and its polls
			// are fresh snapshots, so there is nothing to re-derive — just
			// clear the stale stream state so polls work again.
			m.qmu.Lock()
			delete(m.quarantined, src)
			delete(m.gapPen, src)
			m.lastSeq[src] = 0
			m.qmu.Unlock()
		}
		return nil
	}
	start := time.Now()

	affected, needEval, leaves := resyncClosure(v, src)
	bySource := make(map[string][]string)
	for _, leaf := range leaves {
		ls := v.Node(leaf).Source
		bySource[ls] = append(bySource[ls], leaf)
	}
	if len(bySource[src]) == 0 {
		// Degenerate plan where src feeds nothing materialized: still poll
		// it so the stream can be re-anchored at a known instant.
		bySource[src] = v.LeavesOf(src)
	}
	srcs := make([]string, 0, len(bySource))
	for s := range bySource {
		srcs = append(srcs, s)
	}
	sort.Strings(srcs)

	b := m.vstore.Begin()
	states := make(map[string]*relation.Relation)
	var asOfSrc clock.Time
	for _, s := range srcs {
		ls := bySource[s]
		specs := make([]source.QuerySpec, len(ls))
		for i, leaf := range ls {
			specs[i] = source.QuerySpec{Rel: leaf}
		}
		answers, asOf, err := m.pollSource(s, specs, true)
		if err != nil {
			err = fmt.Errorf("core: resync poll of %s: %w", s, err)
			m.obs.reg.Emit(metrics.Event{Type: metrics.EventResync, Subject: src, Dur: time.Since(start), Err: err.Error()})
			return err
		}
		m.stats.sourcePolls.Add(1)
		if s == src {
			asOfSrc = asOf
		}
		for i, leaf := range ls {
			ans := answers[i]
			m.stats.tuplesPolled.Add(int64(ans.Len()))
			if s != src {
				if err := m.compensate(ans, s, vdp.PollSpec{Source: s, Leaf: leaf}, asOf, b); err != nil {
					return fmt.Errorf("core: resync compensation for %s/%s: %w", s, leaf, err)
				}
			}
			states[leaf] = ans
		}
	}

	// Re-evaluate the affected sub-DAG bottom-up (Order is topological and
	// the evaluation set is child-closed, so every input is in states).
	for _, name := range v.Order() {
		if !needEval[name] || v.Node(name).IsLeaf() {
			continue
		}
		r, err := vdp.EvalDef(v.Node(name), vdp.ResolverFromCatalog(states))
		if err != nil {
			return fmt.Errorf("core: resync evaluation of %s: %w", name, err)
		}
		states[name] = r
	}
	for _, name := range v.Order() {
		if !affected[name] {
			continue
		}
		if err := writeMaterialized(b, v.Node(name), states[name]); err != nil {
			return err
		}
	}

	// Commit: reconcile the announcement stream against the snapshot and
	// publish — all under qmu, like every other publish.
	m.qmu.Lock()
	if !m.resolveSourceLocked(src, asOfSrc) {
		m.resyncOvertaken[src]++
		overtaken := m.resyncOvertaken[src]
		m.qmu.Unlock()
		err := fmt.Errorf("core: resync of %q: %w; retry", src, ErrResyncOvertaken)
		m.obs.reg.Emit(metrics.Event{
			Type: metrics.EventResync, Subject: src, Dur: time.Since(start), Err: err.Error(),
			Fields: map[string]int64{"overtaken": int64(overtaken)},
		})
		return err
	}
	delete(m.resyncOvertaken, src)
	if asOfSrc > m.lastProcessed[src] {
		m.lastProcessed[src] = asOfSrc
	}
	m.resyncBarrier[src] = m.lastProcessed[src]
	m.vstore.Publish(b, m.lastProcessed.Clone(), m.clk.Now())
	m.pruneDoneLocked()
	m.pruneEpochsLocked()
	m.qmu.Unlock()
	// A resync publish folds a fresh source snapshot the commit log never
	// saw: replay cannot cross it. Mark it (mu is held for the whole
	// resync) so recovery stops here and the log schedules a checkpoint.
	m.logBarrierLocked("resync:" + src)
	// The rebuilt state was never expressed as deltas either: subscribers
	// cannot apply their way across it, so force them to snapshot-resync.
	m.subs.barrier("resync:" + src)
	m.feedBarrierLocked("resync:"+src, m.vstore.Current())
	m.stats.resyncs.Add(1)
	m.obs.reg.Emit(metrics.Event{Type: metrics.EventResync, Subject: src, Dur: time.Since(start)})
	seq := uint64(0)
	if v := m.vstore.Current(); v != nil {
		seq = v.Seq()
	}
	m.obs.reg.Emit(metrics.Event{
		Type: metrics.EventPublish, Subject: fmt.Sprintf("v%d", seq),
		Fields: map[string]int64{"version": int64(seq)},
	})
	return nil
}
