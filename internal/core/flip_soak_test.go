package core

import (
	"sync"
	"testing"

	"squirrel/internal/delta"
	"squirrel/internal/relation"
	"squirrel/internal/vdp"
)

// TestFlipSoakConcurrentValidity soaks the re-annotation transaction under
// full concurrency: source committers and update churn run while a flipper
// repeatedly materializes and virtualizes T.s2 and readers hammer the
// query path. Every answer must equal the from-scratch evaluation at its
// own Reflect vector — whichever plan epoch served it — and the observed
// store version must never go backwards. Run with -race.
//
// A deterministic single-trajectory port lives at
// testdata/scenarios/flip-adapt-port.yaml (run via `squirrel scenario`):
// it pins one flip sequence on virtual time with a golden transcript,
// while this test keeps the concurrent envelope.
func TestFlipSoakConcurrentValidity(t *testing.T) {
	e := newEnv(t, nil, nil, nil)
	tSchema := e.vdp_.Node("T").Schema

	var wg sync.WaitGroup
	stop := make(chan struct{})

	commits := 60
	flipsWanted := 12
	queries := 30
	if testing.Short() {
		commits, flipsWanted, queries = 20, 4, 10
	}

	// Source committers.
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < commits; i++ {
			d := delta.New()
			d.Insert("R", relation.T(int64(500000+i), int64(10+10*(i%3)), int64(i), 100))
			if _, err := e.db1.Apply(d); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < commits; i++ {
			d := delta.New()
			d.Insert("S", relation.T(int64(600000+i), int64(i%9), int64(i%40)))
			if _, err := e.db2.Apply(d); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	// Update churn until readers finish.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := e.med.RunUpdateTransaction(); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	// The flipper: alternate T between fully materialized and s2-virtual
	// through the full re-annotation transaction (drop on one side, VAP
	// backfill on the other).
	wg.Add(1)
	go func() {
		defer wg.Done()
		hybrid := vdp.Ann([]string{"r1", "r3", "s1"}, []string{"s2"})
		full := vdp.AllMaterialized(tSchema)
		for i := 0; i < flipsWanted; i++ {
			ann := hybrid
			if i%2 == 1 {
				ann = full
			}
			anns := e.med.VDP().Annotations()
			anns["T"] = ann
			if _, err := e.med.Reannotate(anns); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	// Readers: answers exact at their own Reflect vector, versions
	// monotone per reader, regardless of which epoch served them.
	readers := 4
	var rwg sync.WaitGroup
	for w := 0; w < readers; w++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			lastVersion := uint64(0)
			for i := 0; i < queries; i++ {
				res, err := e.med.QueryOpts("T", []string{"r1", "s2"}, nil, QueryOptions{KeyBased: KeyBasedOff})
				if err != nil {
					t.Error(err)
					return
				}
				if res.Version < lastVersion {
					t.Errorf("version went backwards: %d after %d", res.Version, lastVersion)
					return
				}
				lastVersion = res.Version
				states, err := e.recomputeAt(res.Reflect)
				if err != nil {
					t.Error(err)
					return
				}
				want, err := projectSelectLocal(states["T"], "T", []string{"r1", "s2"}, nil)
				if err != nil {
					t.Error(err)
					return
				}
				if !res.Answer.Equal(want) {
					t.Errorf("answer diverged from state at Reflect %v (version %d):\n%swant\n%s",
						res.Reflect, res.Version, res.Answer, want)
					return
				}
			}
		}()
	}
	rwg.Wait()
	close(stop)
	wg.Wait()

	// Drain and converge: the final store agrees with ground truth under
	// whichever annotation the flipper left behind.
	for {
		ran, err := e.med.RunUpdateTransaction()
		if err != nil {
			t.Fatal(err)
		}
		if !ran {
			break
		}
	}
	queryTruth(t, e)
	if got := e.med.Stats().AnnotationSwitches; got != flipsWanted {
		t.Errorf("AnnotationSwitches = %d, want %d", got, flipsWanted)
	}

	// Nothing leaks: no pins, no retained announcements, no capture flags,
	// and the epoch chain has been pruned back to the live head.
	e.med.qmu.Lock()
	pins, done, captures := len(e.med.pins), len(e.med.done), len(e.med.capture)
	e.med.qmu.Unlock()
	if pins != 0 || done != 0 || captures != 0 {
		t.Errorf("leaked %d pins, %d retained announcements, %d captures", pins, done, captures)
	}
	depth := 0
	for ep := e.med.epoch(); ep != nil; ep = ep.prev.Load() {
		depth++
	}
	if depth > 1 {
		t.Errorf("epoch chain not pruned: depth %d", depth)
	}
}
