package core

import (
	"strings"
	"testing"

	"squirrel/internal/delta"
	"squirrel/internal/relation"
)

// hotR1Workload issues n queries touching only T.r1, making r1 the lone
// hot attribute of the window.
func hotR1Workload(t *testing.T, e *testEnv, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := e.med.QueryOpts("T", []string{"r1"}, nil, QueryOptions{}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestProfileCollectorWindows(t *testing.T) {
	e := newEnv(t, nil, nil, nil)
	col := NewProfileCollector(e.med)
	if q := col.PendingQueries(); q != 0 {
		t.Fatalf("fresh collector window has %d queries", q)
	}
	hotR1Workload(t, e, 4)
	d := delta.New()
	d.Insert("R", relation.T(9, 10, 9, 100))
	e.db1.MustApply(d)

	// Peek does not end the window.
	p, q := col.Peek()
	if q != 4 {
		t.Fatalf("peeked %d queries, want 4", q)
	}
	if p.AccessFreq["r1"] != 1 || p.AccessFreq["s2"] != 0 {
		t.Fatalf("AccessFreq = %v", p.AccessFreq)
	}
	if p.UpdateShare["db1"] != 1 || p.UpdateShare["db2"] != 0 {
		t.Fatalf("UpdateShare = %v", p.UpdateShare)
	}
	if _, q2 := col.Peek(); q2 != 4 {
		t.Fatal("Peek consumed the window")
	}

	// Collect ends it: the next window starts empty.
	if _, q3 := col.Collect(); q3 != 4 {
		t.Fatalf("collected %d queries, want 4", q3)
	}
	p4, q4 := col.Peek()
	if q4 != 0 {
		t.Fatalf("window not reset: %d queries", q4)
	}
	if p4.AccessFreq["r1"] != 0 {
		t.Fatalf("stale access freq after Collect: %v", p4.AccessFreq)
	}
}

func TestAdaptControllerStepGates(t *testing.T) {
	e := newEnv(t, nil, nil, nil)
	ctrl := NewAdaptController(e.med, AdaptConfig{MinQueries: 3, HysteresisRounds: 2})

	// Gate 1: thin window — skip without consuming.
	d, err := ctrl.Step()
	if err != nil {
		t.Fatal(err)
	}
	if d.Applied || !strings.Contains(d.Skipped, "keep observing") {
		t.Fatalf("thin window: %+v", d)
	}

	// Gate 2: hysteresis — the first qualifying round only arms the flip.
	hotR1Workload(t, e, 5)
	d, err = ctrl.Step()
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Flips) == 0 || d.Applied || !strings.Contains(d.Skipped, "hysteresis") {
		t.Fatalf("first advised round: %+v", d)
	}

	// Same workload again: the flip set repeats and applies (no cooldown
	// yet — nothing was ever applied).
	hotR1Workload(t, e, 5)
	d, err = ctrl.Step()
	if err != nil {
		t.Fatal(err)
	}
	if !d.Applied {
		t.Fatalf("second advised round should apply: %+v", d)
	}
	ann := e.med.VDP().Node("T").Ann
	if ann.IsMaterialized("s2") || !ann.IsMaterialized("r1") {
		t.Fatalf("annotation not adapted: %v", ann)
	}

	// Steady state: the advisor now agrees with the live annotation.
	hotR1Workload(t, e, 5)
	d, err = ctrl.Step()
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Flips) != 0 || !strings.Contains(d.Skipped, "matches") {
		t.Fatalf("steady state: %+v", d)
	}

	// Gate 3: cooldown — shift the workload immediately; even after
	// hysteresis the switch is deferred.
	for i := 0; i < 2; i++ {
		for j := 0; j < 5; j++ {
			if _, err := e.med.QueryOpts("T", []string{"s2"}, nil, QueryOptions{KeyBased: KeyBasedOff}); err != nil {
				t.Fatal(err)
			}
		}
		if d, err = ctrl.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if d.Applied || !strings.Contains(d.Skipped, "cooldown") {
		t.Fatalf("cooldown round: %+v", d)
	}
	if ctrl.Rounds() != 6 || ctrl.Applied() != 1 {
		t.Fatalf("rounds=%d applied=%d", ctrl.Rounds(), ctrl.Applied())
	}
	if ctrl.LastDecision() != d {
		t.Fatal("LastDecision should return the latest round")
	}
}

func TestAdaptControllerManualAndReadvise(t *testing.T) {
	e := newEnv(t, nil, nil, nil)
	ctrl := NewAdaptController(e.med, AdaptConfig{MinQueries: 1, HysteresisRounds: 1, Manual: true})
	hotR1Workload(t, e, 5)

	// Manual mode: the loop proposes but never applies.
	d, err := ctrl.Step()
	if err != nil {
		t.Fatal(err)
	}
	if d.Applied || !strings.Contains(d.Skipped, "manual") {
		t.Fatalf("manual round: %+v", d)
	}
	if !e.med.VDP().Node("T").Ann.IsMaterialized("s2") {
		t.Fatal("manual mode must not re-annotate")
	}

	// Dry run: report without consuming the window or changing anything.
	hotR1Workload(t, e, 3)
	d, err = ctrl.Readvise(true)
	if err != nil {
		t.Fatal(err)
	}
	if d.Applied || len(d.Flips) == 0 || d.Skipped != "dry run" {
		t.Fatalf("dry run: %+v", d)
	}
	if !e.med.VDP().Node("T").Ann.IsMaterialized("s2") {
		t.Fatal("dry run must not re-annotate")
	}

	// Operator-triggered apply: bypasses manual mode and hysteresis, and
	// the dry run above left the window intact for it.
	d, err = ctrl.Readvise(false)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Applied || len(d.Flips) == 0 {
		t.Fatalf("readvise apply: %+v", d)
	}
	if e.med.VDP().Node("T").Ann.IsMaterialized("s2") {
		t.Fatal("readvise did not re-annotate")
	}
	queryTruth(t, e)
}
