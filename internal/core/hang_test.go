package core

import (
	"testing"
	"time"

	"squirrel/internal/delta"
	"squirrel/internal/relation"
)

// TestHungPollDoesNotBlockMediator is the regression test for the lock
// narrowing in RunUpdateTransaction: the transaction holds only txnMu
// while polling sources, so a poll stalled on a dead peer must not block
// queries, snapshots, or a resync of a *different* source. Before the
// narrowing, the store mutex was held across the VAP polls and a single
// hung source wedged ResyncSource (and with it the runtime's repair loop)
// behind the stuck transaction.
func TestHungPollDoesNotBlockMediator(t *testing.T) {
	e, inj := newChaosEnv(t, 1)

	// The next db2 operation stalls inside the injector until we release
	// it (the injected Sleep blocks on the channel, ignoring duration).
	release := make(chan struct{})
	inj.Sleep = func(time.Duration) { <-release }
	inj.HangNext("db2", 1, time.Hour)

	// Queue an R update so the transaction has work that requires polling
	// db2 (T's virtual attribute s2 lives there).
	d := delta.New()
	d.Insert("R", relation.T(int64(50), int64(10), int64(1), int64(100)))
	if _, err := e.db1.Apply(d); err != nil {
		t.Fatal(err)
	}

	txnDone := make(chan error, 1)
	go func() {
		_, err := e.med.RunUpdateTransaction()
		txnDone <- err
	}()

	// Wait until the transaction is actually stalled inside the poll.
	deadline := time.After(5 * time.Second)
	for inj.Counts("db2").Hangs == 0 {
		select {
		case err := <-txnDone:
			t.Fatalf("transaction finished before hanging: %v", err)
		case <-deadline:
			t.Fatal("transaction never reached the hung poll")
		case <-time.After(time.Millisecond):
		}
	}

	// While the transaction is stuck mid-poll, everything that only needs
	// the store (not txnMu) must still complete promptly.
	step := func(name string, fn func() error) {
		t.Helper()
		done := make(chan error, 1)
		go func() { done <- fn() }()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("%s failed while a poll hung: %v", name, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("%s blocked behind the hung update transaction", name)
		}
	}
	step("fast-path query", func() error {
		_, err := e.med.QueryOpts("T", []string{"r1", "s1"}, nil, QueryOptions{KeyBased: KeyBasedOff})
		return err
	})
	step("polling query", func() error {
		_, err := e.med.QueryOpts("T", []string{"r1", "s2"}, nil, QueryOptions{KeyBased: KeyBasedOff})
		return err
	})
	step("snapshot", func() error {
		_, err := e.med.Snapshot()
		return err
	})
	// Repairing a *different* source publishes a new version while the
	// transaction is still in flight.
	step("resync db1", func() error { return e.med.ResyncSource("db1") })

	// Queue an S update so the retried transaction still has work after
	// the db1 resync absorbed the R announcement.
	d2 := delta.New()
	d2.Insert("S", relation.T(int64(50), int64(3), int64(7)))
	if _, err := e.db2.Apply(d2); err != nil {
		t.Fatal(err)
	}

	// Release the hang: the poll fails, the fault boundary retries it
	// successfully, and the transaction then finds its builder's base
	// overtaken by the resync's publish — it must discard and retry, not
	// clobber the resynced state.
	close(release)
	select {
	case err := <-txnDone:
		if err != nil {
			t.Fatalf("update transaction: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("update transaction never completed after release")
	}
	if got := e.med.Stats().UpdateTxnRetries; got < 1 {
		t.Errorf("UpdateTxnRetries = %d, want >= 1 (commit must have detected the resync publish)", got)
	}

	// Drain and check the store converged to ground truth (the resynced
	// R tuple and the queued S tuple both present exactly once).
	for {
		ran, err := e.med.RunUpdateTransaction()
		if err != nil {
			t.Fatal(err)
		}
		if !ran {
			break
		}
	}
	truth := e.groundTruth(t)
	for _, node := range []string{"R'", "S'", "T"} {
		got := e.med.StoreSnapshot(node)
		wantSchema, err := storeSchema(e.vdp_.Node(node))
		if err != nil {
			t.Fatal(err)
		}
		want, err := projectSelectLocal(truth[node], node, wantSchema.AttrNames(), nil)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Errorf("%s diverged after hung-poll recovery:\n%swant\n%s", node, got, want)
		}
	}
}

// TestCancellingQueueStillCommits: announcements whose deltas fully
// annihilate under coalescing (insert then delete of the same tuple) must
// still commit — the transaction advances the version (and with it ref′)
// even though it propagates zero atoms. Skipping the commit would leave
// ref′ behind the announcement log and break Eager Compensation's window
// arithmetic for later queries.
func TestCancellingQueueStillCommits(t *testing.T) {
	e := newEnv(t, nil, nil, nil)
	tup := relation.T(int64(60), int64(10), int64(2), int64(100))

	ins := delta.New()
	ins.Insert("R", tup)
	if _, err := e.db1.Apply(ins); err != nil {
		t.Fatal(err)
	}
	del := delta.New()
	del.Delete("R", tup)
	if _, err := e.db1.Apply(del); err != nil {
		t.Fatal(err)
	}

	before := e.med.vstore.Current()
	ran, err := e.med.RunUpdateTransaction()
	if err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("fully-cancelling queue must still run a transaction")
	}
	after := e.med.vstore.Current()
	if after.Seq() != before.Seq()+1 {
		t.Errorf("version did not advance: seq %d -> %d", before.Seq(), after.Seq())
	}
	if after.RefOf("db1") <= before.RefOf("db1") {
		t.Errorf("ref'(db1) did not advance: %d -> %d", before.RefOf("db1"), after.RefOf("db1"))
	}
	// The store contents are unchanged — nothing was propagated.
	for _, node := range []string{"R'", "T"} {
		if got, want := after.Rel(node), before.Rel(node); !got.Equal(want) {
			t.Errorf("%s changed by a net-zero transaction:\n%swant\n%s", node, got, want)
		}
	}
	// And the queue is fully drained.
	if ran, err := e.med.RunUpdateTransaction(); err != nil || ran {
		t.Fatalf("queue not drained: ran=%v err=%v", ran, err)
	}
}
