package core

import (
	"fmt"
	"math/rand"
	"testing"

	"squirrel/internal/algebra"
	"squirrel/internal/checker"
	"squirrel/internal/clock"
	"squirrel/internal/delta"
	"squirrel/internal/relation"
	"squirrel/internal/source"
	"squirrel/internal/trace"
	"squirrel/internal/vdp"
)

// annotation configurations exercised by the soak: the materialized /
// virtual / hybrid spectrum of §1.
func soakConfigs() map[string][3]vdp.Annotation {
	rp := relation.MustSchema("R'", []relation.Attribute{
		{Name: "r1", Type: relation.KindInt}, {Name: "r2", Type: relation.KindInt},
		{Name: "r3", Type: relation.KindInt}}, "r1")
	sp := relation.MustSchema("S'", []relation.Attribute{
		{Name: "s1", Type: relation.KindInt}, {Name: "s2", Type: relation.KindInt}}, "s1")
	return map[string][3]vdp.Annotation{
		"fully-materialized": {nil, nil, nil},
		"virtual-R'":         {vdp.AllVirtual(rp), nil, nil},
		"virtual-both-aux":   {vdp.AllVirtual(rp), vdp.AllVirtual(sp), nil},
		"hybrid-T":           {nil, nil, vdp.Ann([]string{"r1", "s1"}, []string{"r3", "s2"})},
		"hybrid-everything": {vdp.AllVirtual(rp), vdp.AllVirtual(sp),
			vdp.Ann([]string{"r1", "s1"}, []string{"r3", "s2"})},
	}
}

// randomCommit applies a random non-redundant transaction to one source.
func randomCommit(t *testing.T, e *testEnv, rng *rand.Rand) {
	t.Helper()
	d := delta.New()
	if rng.Intn(2) == 0 {
		cur, _ := e.db1.Current("R")
		for i := 0; i < 1+rng.Intn(3); i++ {
			if rng.Intn(2) == 0 || cur.Len() == 0 {
				tp := relation.T(1000+rng.Intn(100000), 10*(1+rng.Intn(5)), rng.Intn(200), 50*(1+rng.Intn(2)))
				if cur.Count(tp) == 0 && d.Rel("R").Count(tp) == 0 {
					d.Insert("R", tp)
				}
			} else {
				rows := cur.Rows()
				tp := rows[rng.Intn(len(rows))].Tuple
				if d.Rel("R").Count(tp) == 0 {
					d.Delete("R", tp)
				}
			}
		}
		if !d.IsEmpty() {
			// Guard against insert-then-delete collisions on cur.
			if _, err := e.db1.Apply(d); err != nil {
				t.Fatalf("commit R: %v", err)
			}
		}
		return
	}
	cur, _ := e.db2.Current("S")
	for i := 0; i < 1+rng.Intn(3); i++ {
		if rng.Intn(2) == 0 || cur.Len() == 0 {
			tp := relation.T(10*(1+rng.Intn(8)), rng.Intn(10), rng.Intn(100))
			if cur.Count(tp) == 0 && d.Rel("S").Count(tp) == 0 {
				d.Insert("S", tp)
			}
		} else {
			rows := cur.Rows()
			tp := rows[rng.Intn(len(rows))].Tuple
			if d.Rel("S").Count(tp) == 0 {
				d.Delete("S", tp)
			}
		}
	}
	if !d.IsEmpty() {
		if _, err := e.db2.Apply(d); err != nil {
			t.Fatalf("commit S: %v", err)
		}
	}
}

// TestMediatorSoak drives random interleavings of commits, update
// transactions, and queries through every annotation configuration and
// checks, after each update transaction, that every materialized portion
// equals the projection of from-scratch recomputation over the current
// source states (updates are always fully processed before comparing).
func TestMediatorSoak(t *testing.T) {
	for name, anns := range soakConfigs() {
		t.Run(name, func(t *testing.T) {
			for seed := int64(0); seed < 8; seed++ {
				rng := rand.New(rand.NewSource(seed))
				e := newEnv(t, anns[0], anns[1], anns[2])
				for step := 0; step < 25; step++ {
					op := rng.Intn(10)
					switch {
					case op < 5:
						randomCommit(t, e, rng)
					case op < 8:
						if _, err := e.med.RunUpdateTransaction(); err != nil {
							t.Fatalf("seed %d step %d: update: %v", seed, step, err)
						}
					default:
						// Random query across materialized and virtual attrs.
						attrs := [][]string{{"r1", "s1"}, {"r1", "r3"}, {"s1", "s2"}, nil}[rng.Intn(4)]
						mode := []KeyBasedMode{KeyBasedAuto, KeyBasedOff, KeyBasedForce}[rng.Intn(3)]
						if _, err := e.med.QueryOpts("T", attrs, nil, QueryOptions{KeyBased: mode}); err != nil {
							t.Fatalf("seed %d step %d: query: %v", seed, step, err)
						}
					}
				}
				// Drain fully, then compare stores to ground truth.
				for {
					ran, err := e.med.RunUpdateTransaction()
					if err != nil {
						t.Fatalf("seed %d: final drain: %v", seed, err)
					}
					if !ran {
						break
					}
				}
				truth := e.groundTruth(t)
				for _, node := range e.vdp_.NonLeaves() {
					st := e.med.StoreSnapshot(node)
					n := e.vdp_.Node(node)
					if n.FullyVirtual() {
						if st != nil {
							t.Errorf("seed %d: virtual node %s has a store", seed, node)
						}
						continue
					}
					mats := n.MaterializedAttrs()
					want, err := projectSelectLocal(truth[node], node, mats, nil)
					if err != nil {
						t.Fatal(err)
					}
					if !st.Equal(want) {
						t.Fatalf("seed %d: node %s store diverged:\n%swant\n%s", seed, node, st, want)
					}
				}
				// Queries after the drain agree with ground truth too.
				res, err := e.med.QueryOpts("T", nil, nil, QueryOptions{})
				if err != nil {
					t.Fatal(err)
				}
				want, _ := projectSelectLocal(truth["T"], "T", nil, nil)
				if !res.Answer.Equal(want) {
					t.Fatalf("seed %d: full query diverged:\n%swant\n%s", seed, res.Answer, want)
				}
			}
		})
	}
}

// TestSoakStatsSanity spot-checks that the counters move as configured.
func TestSoakStatsSanity(t *testing.T) {
	e := newEnv(t, nil, nil, nil)
	d := delta.New()
	d.Insert("R", relation.T(99, 10, 1, 100))
	e.db1.MustApply(d)
	e.med.RunUpdateTransaction()
	e.med.Query("T", nil, nil)
	s := e.med.Stats()
	if s.UpdateTxns != 1 || s.QueryTxns != 1 {
		t.Errorf("stats: %+v", s)
	}
	if s.SourcePolls != 2 { // the two Initialize polls only
		t.Errorf("polls: %+v", s)
	}
	if s.AtomsPropagated == 0 || s.QueueHighWater == 0 {
		t.Errorf("counters flat: %+v", s)
	}
	if got := fmt.Sprint(MaterializedContributor, HybridContributor, VirtualContributor, ContributorKind(9)); got == "" {
		t.Errorf("kind strings")
	}
}

// TestVirtualSelfJoin exercises the kernel with a SELF-JOIN over a fully
// virtual child: the Preparation pass must request the child's own state
// and the occurrence-sequencing discipline must stay exact against the
// temporary.
func TestVirtualSelfJoin(t *testing.T) {
	clk := &clock.Logical{}
	db := source.NewDB("db", clk)
	pSchema := relation.MustSchema("P", []relation.Attribute{
		{Name: "p1", Type: relation.KindInt}, {Name: "p2", Type: relation.KindInt},
		{Name: "p3", Type: relation.KindInt}}, "p1")
	p := relation.NewSet(pSchema)
	p.Insert(relation.T(1, 10, 20))
	p.Insert(relation.T(2, 20, 10))
	p.Insert(relation.T(3, 10, 10))
	db.LoadRelation(p)

	pp := relation.MustSchema("P'", []relation.Attribute{
		{Name: "p1", Type: relation.KindInt}, {Name: "p2", Type: relation.KindInt},
		{Name: "p3", Type: relation.KindInt}}, "p1")
	m := relation.MustSchema("M", []relation.Attribute{
		{Name: "p1", Type: relation.KindInt}, {Name: "p3", Type: relation.KindInt}})
	plan, err := vdp.New(
		&vdp.Node{Name: "P", Schema: pSchema, Source: "db"},
		&vdp.Node{Name: "P'", Schema: pp, Ann: vdp.AllVirtual(pp),
			Def: vdp.SPJ{Inputs: []vdp.SPJInput{{Rel: "P"}}, Proj: []string{"p1", "p2", "p3"}}},
		&vdp.Node{Name: "M", Schema: m, Export: true, Ann: vdp.AllMaterialized(m),
			Def: vdp.SPJ{
				Inputs:   []vdp.SPJInput{{Rel: "P'", Proj: []string{"p1", "p2"}}, {Rel: "P'", Proj: []string{"p3"}}},
				JoinCond: algebra.Eq(algebra.A("p2"), algebra.A("p3")),
				Proj:     []string{"p1", "p3"},
			}},
	)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder()
	med, err := New(Config{
		VDP:      plan,
		Sources:  map[string]SourceConn{"db": LocalSource{DB: db}},
		Clock:    clk,
		Recorder: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	ConnectLocal(med, db)
	if err := med.Initialize(); err != nil {
		t.Fatal(err)
	}

	check := func() {
		t.Helper()
		cur, _ := db.Current("P")
		truth, err := plan.EvalAll(vdp.ResolverFromCatalog(map[string]*relation.Relation{"P": cur}))
		if err != nil {
			t.Fatal(err)
		}
		if got := med.StoreSnapshot("M"); !got.Equal(truth["M"]) {
			t.Fatalf("virtual self-join diverged:\n%swant\n%s", got, truth["M"])
		}
	}
	check()

	muts := []*delta.Delta{}
	d1 := delta.New()
	d1.Insert("P", relation.T(4, 10, 10))
	muts = append(muts, d1)
	d2 := delta.New()
	d2.Delete("P", relation.T(3, 10, 10))
	d2.Insert("P", relation.T(5, 20, 20))
	muts = append(muts, d2)
	for i, d := range muts {
		if _, err := db.Apply(d); err != nil {
			t.Fatalf("mut %d: %v", i, err)
		}
		if _, err := med.RunUpdateTransaction(); err != nil {
			t.Fatalf("mut %d txn: %v", i, err)
		}
		check()
	}
	env := checker.Environment{VDP: plan, Sources: map[string]*source.DB{"db": db}, Trace: rec}
	if err := env.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}
