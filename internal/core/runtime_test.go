package core

import (
	"testing"
	"time"

	"squirrel/internal/delta"
	"squirrel/internal/relation"
)

func TestRuntimeFlushesPeriodically(t *testing.T) {
	e := newEnv(t, nil, nil, nil)
	rt, err := NewRuntime(e.med, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	d := delta.New()
	d.Insert("R", relation.T(5, 20, 11, 100))
	e.db1.MustApply(d)

	deadline := time.Now().Add(2 * time.Second)
	for e.med.QueueLen() > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if e.med.QueueLen() != 0 {
		t.Fatalf("runtime never flushed the queue")
	}
	if err := rt.Stop(); err != nil {
		t.Fatal(err)
	}
	if rt.Flushes() == 0 {
		t.Errorf("no flushes counted")
	}
	truth := e.groundTruth(t)
	if got := e.med.StoreSnapshot("T"); !got.Equal(truth["T"]) {
		t.Errorf("store after runtime flush:\n%swant\n%s", got, truth["T"])
	}
}

func TestRuntimeStopDrains(t *testing.T) {
	e := newEnv(t, nil, nil, nil)
	rt, err := NewRuntime(e.med, time.Hour) // tick never fires
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	d := delta.New()
	d.Insert("R", relation.T(6, 10, 2, 100))
	e.db1.MustApply(d)
	if err := rt.Stop(); err != nil {
		t.Fatal(err)
	}
	if e.med.QueueLen() != 0 {
		t.Errorf("Stop must drain the queue")
	}
	// Stop again is a no-op.
	if err := rt.Stop(); err != nil {
		t.Errorf("double stop: %v", err)
	}
}

func TestRuntimeFlushSynchronous(t *testing.T) {
	e := newEnv(t, nil, nil, nil)
	rt, err := NewRuntime(e.med, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	d := delta.New()
	d.Insert("S", relation.T(40, 4, 10))
	e.db2.MustApply(d)
	if err := rt.Flush(); err != nil {
		t.Fatal(err)
	}
	if e.med.QueueLen() != 0 {
		t.Errorf("Flush must drain")
	}
	if rt.Err() != nil {
		t.Errorf("unexpected error: %v", rt.Err())
	}
}

func TestRuntimeErrClearsAfterRecovery(t *testing.T) {
	e, flaky := flakyEnv(t, 0, nil)
	if err := e.med.Initialize(); err != nil {
		t.Fatal(err)
	}
	rt, err := NewRuntime(e.med, time.Hour) // ticks driven by hand
	if err != nil {
		t.Fatal(err)
	}
	// ΔS forces a poll of db1 (R' virtual); make that poll fail.
	d := delta.New()
	d.Insert("S", relation.T(40, 4, 10))
	e.db2.MustApply(d)
	flaky.failures = flaky.calls + 1

	rt.flushAll()
	if rt.Err() == nil {
		t.Fatalf("failed tick must latch an error")
	}
	if e.med.QueueLen() != 1 {
		t.Fatalf("queue must survive the failed tick: %d", e.med.QueueLen())
	}

	// The source recovers; the next fully clean drain must clear the
	// CURRENT condition (Err) while preserving the history (LastErr,
	// ErrCount) — the old behavior latched Err forever, keeping health
	// checks red long after recovery.
	rt.flushAll()
	if err := rt.Err(); err != nil {
		t.Errorf("Err() after clean drain = %v, want nil", err)
	}
	if rt.LastErr() == nil {
		t.Errorf("LastErr() must retain the recovered failure")
	}
	if n := rt.ErrCount(); n != 1 {
		t.Errorf("ErrCount() = %d, want 1", n)
	}
	if e.med.QueueLen() != 0 {
		t.Errorf("clean tick must drain the queue")
	}
	if err := rt.Stop(); err != nil {
		t.Errorf("Stop() after recovery = %v, want nil", err)
	}
}

func TestBatchedRuntimeDrainsOnSignal(t *testing.T) {
	e := newEnv(t, nil, nil, nil)
	rt, err := NewBatchedRuntime(e.med, 2*time.Millisecond, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rt.Batched() {
		t.Fatalf("NewBatchedRuntime must report Batched")
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	d := delta.New()
	d.Insert("R", relation.T(5, 20, 11, 100))
	e.db1.MustApply(d)

	deadline := time.Now().Add(2 * time.Second)
	for e.med.QueueLen() > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if e.med.QueueLen() != 0 {
		t.Fatalf("batched runtime never drained the queue")
	}
	if err := rt.Stop(); err != nil {
		t.Fatal(err)
	}
	truth := e.groundTruth(t)
	if got := e.med.StoreSnapshot("T"); !got.Equal(truth["T"]) {
		t.Errorf("store after batched flush:\n%swant\n%s", got, truth["T"])
	}
}

func TestBatchedRuntimeCoalesces(t *testing.T) {
	e := newEnv(t, nil, nil, nil)
	// A generous window so every announcement below lands inside one
	// batch; maxBatch disabled.
	rt, err := NewBatchedRuntime(e.med, 200*time.Millisecond, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		d := delta.New()
		d.Insert("R", relation.T(50+i, 20, 11, 100))
		e.db1.MustApply(d)
	}
	deadline := time.Now().Add(5 * time.Second)
	for e.med.QueueLen() > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if e.med.QueueLen() != 0 {
		t.Fatalf("batched runtime never drained the queue")
	}
	if err := rt.Stop(); err != nil {
		t.Fatal(err)
	}
	truth := e.groundTruth(t)
	if got := e.med.StoreSnapshot("T"); !got.Equal(truth["T"]) {
		t.Errorf("store after coalesced flush:\n%swant\n%s", got, truth["T"])
	}
}

func TestBatchedRuntimeErrors(t *testing.T) {
	e := newEnv(t, nil, nil, nil)
	if _, err := NewBatchedRuntime(nil, time.Millisecond, 0); err == nil {
		t.Errorf("nil mediator")
	}
	if _, err := NewBatchedRuntime(e.med, -time.Millisecond, 0); err == nil {
		t.Errorf("negative window")
	}
	// window=0 (commit-per-wakeup) is legal.
	rt, err := NewBatchedRuntime(e.med, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	if err := rt.Stop(); err != nil {
		t.Fatal(err)
	}
}

func TestRuntimeErrors(t *testing.T) {
	e := newEnv(t, nil, nil, nil)
	if _, err := NewRuntime(nil, time.Second); err == nil {
		t.Errorf("nil mediator")
	}
	if _, err := NewRuntime(e.med, 0); err == nil {
		t.Errorf("zero period")
	}
	rt, _ := NewRuntime(e.med, time.Hour)
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err == nil {
		t.Errorf("double start")
	}
	rt.Stop()
}
