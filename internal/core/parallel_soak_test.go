package core

import "testing"

// TestParallelSoak re-runs the full chaos soak of fault_soak_test.go with
// the staged parallel kernel (8 workers): committers churn both sources,
// update transactions run the antichain stages on a worker pool with
// concurrent VAP polls, and ServeStale readers race against them under
// -race. The invariants are unchanged — every answer exact at its Reflect
// vector, degraded answers bounded, stores converging to ground truth,
// no pin or announcement leaks — because the staged executor must be
// observationally identical to the serial reference kernel.
func TestParallelSoak(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(string(rune('A'+seed-1)), func(t *testing.T) {
			runFaultSoak(t, seed, 8)
		})
	}
}
