package core

import (
	"strings"
	"sync"
	"testing"
	"time"

	"squirrel/internal/clock"
	"squirrel/internal/delta"
	"squirrel/internal/relation"
	"squirrel/internal/resilience"
	"squirrel/internal/source"
	"squirrel/internal/trace"
	"squirrel/internal/vdp"
)

// This file soaks the fault boundary under -race: seeded chaos on the
// polled source while committers churn, update transactions run, and
// readers issue ServeStale queries. The invariant is the robustness
// strengthening of the versioned-store soak: EVERY answer — degraded or
// not — must equal the from-scratch evaluation of the leaf states its
// Reflect vector names, and degraded answers must carry a staleness bound
// consistent with that vector (Reflect[src] >= Committed - Staleness[src]).
//
// A deterministic single-trajectory port of this soak lives at
// testdata/scenarios/fault-chaos-port.yaml (run via `squirrel scenario`):
// it pins one outage/gap/resync timeline on virtual time with a golden
// transcript, while this file keeps the randomized -race churn.

// newChaosEnv is newEnv with S' and T hybrid (s2 virtual), so every query
// for s2 must poll db2 through the fault boundary, and with the source
// connections wrapped in a seeded fault injector plus retry/backoff.
func newChaosEnv(t testing.TB, seed int64) (*testEnv, *resilience.Injector) {
	t.Helper()
	return newChaosEnvWorkers(t, seed, 0)
}

// newChaosEnvWorkers is newChaosEnv with the kernel executor selected:
// workers == 0 runs the serial reference kernel, workers >= 1 the staged
// kernel with that pool size.
func newChaosEnvWorkers(t testing.TB, seed int64, workers int) (*testEnv, *resilience.Injector) {
	t.Helper()
	clk := &clock.Logical{}
	db1 := source.NewDB("db1", clk)
	db2 := source.NewDB("db2", clk)
	r := relation.NewSet(rSchema())
	r.Insert(relation.T(1, 10, 5, 100))
	r.Insert(relation.T(2, 10, 120, 100))
	r.Insert(relation.T(3, 20, 7, 100))
	s := relation.NewSet(sSchema())
	s.Insert(relation.T(10, 1, 20))
	s.Insert(relation.T(20, 2, 40))
	if err := db1.LoadRelation(r); err != nil {
		t.Fatal(err)
	}
	if err := db2.LoadRelation(s); err != nil {
		t.Fatal(err)
	}
	v := paperPlan(t, nil,
		vdp.Ann([]string{"s1"}, []string{"s2"}),
		vdp.Ann([]string{"r1", "r3", "s1"}, []string{"s2"}))
	inj := resilience.NewInjector(seed)
	rec := trace.NewRecorder()
	med, err := New(Config{
		VDP: v,
		Sources: map[string]SourceConn{
			"db1": resilience.WrapSource(LocalSource{DB: db1}, inj),
			"db2": resilience.WrapSource(LocalSource{DB: db2}, inj),
		},
		Clock:    clk,
		Recorder: rec,
		Resilience: ResilienceConfig{
			Retry: resilience.RetryPolicy{MaxAttempts: 4, BaseDelay: 200 * time.Microsecond},
			Seed:  seed,
		},
		PropagateWorkers: workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	ConnectLocal(med, db1)
	ConnectLocal(med, db2)
	if err := med.Initialize(); err != nil {
		t.Fatal(err)
	}
	return &testEnv{clk: clk, db1: db1, db2: db2, med: med, rec: rec, vdp_: v}, inj
}

// degradeRefusal reports whether err is one of the two legitimate
// ServeStale refusals (cache missing or overtaken by the store) — the
// soak tolerates those and nothing else.
func degradeRefusal(err error) bool {
	return strings.Contains(err.Error(), "no cached answer") ||
		strings.Contains(err.Error(), "cached answer predates")
}

func TestFaultSoak(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(string(rune('A'+seed-1)), func(t *testing.T) {
			runFaultSoak(t, seed, 0)
		})
	}
}

// runFaultSoak is the soak body, parameterized by kernel executor so the
// staged parallel kernel is exercised under the identical chaos mix (see
// TestParallelPropagationSoak).
func runFaultSoak(t *testing.T, seed int64, workers int) {
	e, inj := newChaosEnvWorkers(t, seed, workers)
	attrs := []string{"r1", "s2"}

	// Warm the poll cache, then unleash the chaos mix on the
	// polled source: errors, latency, and occasional scripted
	// outages from the soak loop below.
	if _, err := e.med.QueryOpts("T", attrs, nil, QueryOptions{KeyBased: KeyBasedOff}); err != nil {
		t.Fatal(err)
	}
	inj.Set("db2", resilience.Faults{ErrProb: 0.45, LatencyProb: 0.1, Latency: 100 * time.Microsecond})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	commits := 60
	if testing.Short() {
		commits = 25
	}

	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < commits; i++ {
			d := delta.New()
			d.Insert("R", relation.T(int64(300000+i), int64(10+10*(i%3)), int64(i), 100))
			if _, err := e.db1.Apply(d); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < commits; i++ {
			d := delta.New()
			d.Insert("S", relation.T(int64(400000+i), int64(i%9), int64(i%40)))
			if _, err := e.db2.Apply(d); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	// Update churn: transactions always poll fail-fast, so under
	// chaos some fail — the queue survives and the next round
	// retries. Only non-transient errors count as failures.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := e.med.RunUpdateTransaction(); err != nil &&
				!strings.Contains(err.Error(), "polling") {
				t.Errorf("update txn: %v", err)
				return
			}
		}
	}()

	// Readers under ServeStale: every answer must be exact at its
	// own Reflect vector; degraded answers must bound their own
	// staleness; refusals must be one of the two legitimate kinds.
	queries := 40
	if testing.Short() {
		queries = 15
	}
	readers := 4
	var degraded, served int64
	var cmu sync.Mutex
	var rwg sync.WaitGroup
	for w := 0; w < readers; w++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			for i := 0; i < queries; i++ {
				res, err := e.med.QueryOpts("T", attrs, nil,
					QueryOptions{KeyBased: KeyBasedOff, Degrade: ServeStale})
				if err != nil {
					if !degradeRefusal(err) {
						t.Errorf("query: %v", err)
						return
					}
					continue
				}
				states, err := e.recomputeAt(res.Reflect)
				if err != nil {
					t.Error(err)
					return
				}
				want, err := projectSelectLocal(states["T"], "T", attrs, nil)
				if err != nil {
					t.Error(err)
					return
				}
				if !res.Answer.Equal(want) {
					t.Errorf("answer diverged from state at Reflect %v (degraded=%v):\n%swant\n%s",
						res.Reflect, res.Degraded, res.Answer, want)
					return
				}
				cmu.Lock()
				served++
				if res.Degraded {
					degraded++
					cmu.Unlock()
					if len(res.Staleness) != 1 || res.Staleness["db2"] < 1 {
						t.Errorf("degraded answer must bound db2 only: %v", res.Staleness)
						return
					}
					if res.Reflect["db2"] < res.Committed-res.Staleness["db2"] {
						t.Errorf("staleness bound violated: reflect=%d committed=%d bound=%d",
							res.Reflect["db2"], res.Committed, res.Staleness["db2"])
						return
					}
				} else {
					cmu.Unlock()
					if len(res.Staleness) != 0 {
						t.Errorf("non-degraded answer with staleness: %v", res.Staleness)
						return
					}
				}
			}
		}()
	}
	rwg.Wait()
	close(stop)
	wg.Wait()

	// Recovery: clear the chaos, resync anything quarantined, and
	// drain — the store must converge to ground truth exactly.
	inj.Set("db2", resilience.Faults{})
	for _, src := range e.med.QuarantinedSources() {
		if err := e.med.ResyncSource(src); err != nil {
			t.Fatalf("resync %s: %v", src, err)
		}
	}
	for {
		ran, err := e.med.RunUpdateTransaction()
		if err != nil {
			t.Fatal(err)
		}
		if !ran {
			break
		}
	}
	truth := e.groundTruth(t)
	for _, node := range []string{"R'", "S'", "T"} {
		got := e.med.StoreSnapshot(node)
		wantSchema, err := storeSchema(e.vdp_.Node(node))
		if err != nil {
			t.Fatal(err)
		}
		want, err := projectSelectLocal(truth[node], node, wantSchema.AttrNames(), nil)
		if err != nil {
			t.Fatal(err)
		}
		if got.Len() != want.Len() {
			t.Errorf("%s store diverged after recovery: %d vs %d rows", node, got.Len(), want.Len())
		}
	}

	// No pinned versions or retained announcements leak, even
	// through failed polls and degraded answers.
	e.med.qmu.Lock()
	pins, done := len(e.med.pins), len(e.med.done)
	e.med.qmu.Unlock()
	if pins != 0 || done != 0 {
		t.Errorf("leaked %d pins, %d retained announcements", pins, done)
	}

	st := e.med.Stats()
	counts := inj.Counts("db2")
	t.Logf("seed %d: served=%d degraded=%d pollFailures=%d retries=%d injected(err=%d delay=%d)",
		seed, served, degraded, st.PollFailures, st.PollRetries, counts.Errors, counts.Delays)
	if counts.Errors == 0 {
		t.Error("chaos never fired; the soak proved nothing")
	}
	if st.PollRetries == 0 {
		t.Error("no retries recorded despite injected errors")
	}
}
