package core

import (
	"fmt"
	"sync"
	"testing"

	"squirrel/internal/checker"
	"squirrel/internal/clock"
	"squirrel/internal/delta"
	"squirrel/internal/relation"
	"squirrel/internal/source"
	"squirrel/internal/vdp"
)

// This file soaks the versioned store's concurrency contract: many reader
// goroutines hammer QueryOpts / QueryExprSQL / StoreSnapshot / Stats /
// Snapshot while RunUpdateTransaction churns, and every answer is checked
// against a from-scratch evaluation of the leaf states its Reflect vector
// names — the per-query validity half of the §3 consistency definition,
// verified under full concurrency. Run with -race.

// recomputeAt evaluates the full view from the historical leaf states at
// the times the query's Reflect vector assigns to each leaf's source.
func (e *testEnv) recomputeAt(reflect clock.Vector) (map[string]*relation.Relation, error) {
	dbs := map[string]*source.DB{"db1": e.db1, "db2": e.db2}
	leaves := map[string]*relation.Relation{}
	for _, leaf := range e.vdp_.Leaves() {
		src := e.vdp_.Node(leaf).Source
		st, err := dbs[src].StateAt(leaf, reflect[src])
		if err != nil {
			return nil, err
		}
		leaves[leaf] = st
	}
	return e.vdp_.EvalAll(vdp.ResolverFromCatalog(leaves))
}

func TestVersionedStoreConcurrentValidity(t *testing.T) {
	configs := map[string]struct {
		annT  vdp.Annotation
		attrs []string
	}{
		// Fast path only: every query is lock-free against a published
		// version.
		"fully-materialized": {annT: nil, attrs: []string{"r1", "s1"}},
		// Hybrid T (s2 virtual): queries touching s2 take the polling path
		// with Eager Compensation against the pinned version's ref′.
		"hybrid-T": {annT: vdp.Ann([]string{"r1", "r3", "s1"}, []string{"s2"}), attrs: []string{"r1", "s2"}},
	}
	for name, cfg := range configs {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			e := newEnv(t, nil, nil, cfg.annT)
			var wg sync.WaitGroup
			stop := make(chan struct{})

			commits := 80
			if testing.Short() {
				commits = 30
			}
			// Source committers.
			wg.Add(2)
			go func() {
				defer wg.Done()
				for i := 0; i < commits; i++ {
					d := delta.New()
					d.Insert("R", relation.T(int64(300000+i), int64(10+10*(i%3)), int64(i), 100))
					if _, err := e.db1.Apply(d); err != nil {
						t.Error(err)
						return
					}
				}
			}()
			go func() {
				defer wg.Done()
				for i := 0; i < commits; i++ {
					d := delta.New()
					d.Insert("S", relation.T(int64(400000+i), int64(i%9), int64(i%40)))
					if _, err := e.db2.Apply(d); err != nil {
						t.Error(err)
						return
					}
				}
			}()

			// Update churn until readers finish.
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					if _, err := e.med.RunUpdateTransaction(); err != nil {
						t.Error(err)
						return
					}
				}
			}()

			// Readers: every answer must match the from-scratch evaluation
			// at its own Reflect vector, and the version a reader observes
			// must never go backwards.
			queries := 40
			if testing.Short() {
				queries = 15
			}
			readers := 4
			var rwg sync.WaitGroup
			for w := 0; w < readers; w++ {
				rwg.Add(1)
				go func() {
					defer rwg.Done()
					lastVersion := uint64(0)
					for i := 0; i < queries; i++ {
						res, err := e.med.QueryOpts("T", cfg.attrs, nil, QueryOptions{KeyBased: KeyBasedOff})
						if err != nil {
							t.Error(err)
							return
						}
						if res.Version < lastVersion {
							t.Errorf("version went backwards: %d after %d", res.Version, lastVersion)
							return
						}
						lastVersion = res.Version
						states, err := e.recomputeAt(res.Reflect)
						if err != nil {
							t.Error(err)
							return
						}
						want, err := projectSelectLocal(states["T"], "T", cfg.attrs, nil)
						if err != nil {
							t.Error(err)
							return
						}
						if !res.Answer.Equal(want) {
							t.Errorf("answer diverged from state at Reflect %v (version %d):\n%swant\n%s",
								res.Reflect, res.Version, res.Answer, want)
							return
						}
						// Interleave the rest of the read surface.
						_ = e.med.Stats()
						_ = e.med.StoreSnapshot("T")
						if _, err := e.med.Snapshot(); err != nil {
							t.Error(err)
							return
						}
						if mres, err := e.med.QueryExprSQL("SELECT r1, s1 FROM T WHERE s1 = 10"); err != nil {
							t.Error(err)
							return
						} else if mres.Version == 0 {
							t.Error("multi-export answer missing its version")
							return
						}
					}
				}()
			}
			rwg.Wait()
			close(stop)
			wg.Wait()

			// Drain and confirm convergence to ground truth.
			for {
				ran, err := e.med.RunUpdateTransaction()
				if err != nil {
					t.Fatal(err)
				}
				if !ran {
					break
				}
			}
			truth := e.groundTruth(t)
			for _, node := range []string{"R'", "S'", "T"} {
				got := e.med.StoreSnapshot(node)
				wantSchema, err := storeSchema(e.vdp_.Node(node))
				if err != nil {
					t.Fatal(err)
				}
				want, err := projectSelectLocal(truth[node], node, wantSchema.AttrNames(), nil)
				if err != nil {
					t.Fatal(err)
				}
				if got.Len() != want.Len() {
					t.Errorf("%s store diverged after drain: %d vs %d rows", node, got.Len(), want.Len())
				}
			}

			// No pinned versions or retained announcements leak.
			e.med.qmu.Lock()
			pins, done := len(e.med.pins), len(e.med.done)
			e.med.qmu.Unlock()
			if pins != 0 || done != 0 {
				t.Errorf("leaked %d pins, %d retained announcements", pins, done)
			}

			// The recorded trace satisfies the full §3 consistency
			// definition for the fast path (order preservation is only
			// guaranteed for lock-free queries; concurrent POLLING queries
			// may commit out of version order — per-query validity, checked
			// above, always holds).
			if name == "fully-materialized" {
				env := checker.Environment{
					VDP:     e.vdp_,
					Sources: map[string]*source.DB{"db1": e.db1, "db2": e.db2},
					Trace:   e.rec,
				}
				if err := env.CheckConsistency(); err != nil {
					t.Errorf("consistency: %v", err)
				}
			}
		})
	}
}

// TestVersionCounters exercises the Stats surface added with the
// versioned store.
func TestVersionCounters(t *testing.T) {
	e := newEnv(t, nil, nil, nil)
	s := e.med.Stats()
	if s.CurrentVersion != 1 || s.VersionsPublished != 1 {
		t.Fatalf("after Initialize: current=%d published=%d", s.CurrentVersion, s.VersionsPublished)
	}
	if e.med.StoreVersion() != 1 {
		t.Fatalf("StoreVersion=%d", e.med.StoreVersion())
	}
	d := delta.New()
	d.Insert("R", relation.T(7, 10, 1, 100))
	e.db1.MustApply(d)
	if _, err := e.med.RunUpdateTransaction(); err != nil {
		t.Fatal(err)
	}
	s = e.med.Stats()
	if s.CurrentVersion != 2 || s.VersionsPublished != 2 {
		t.Fatalf("after update: current=%d published=%d", s.CurrentVersion, s.VersionsPublished)
	}
	v := e.med.CurrentVersion()
	if v == nil || v.Seq() != 2 {
		t.Fatalf("CurrentVersion: %+v", v)
	}
	res, err := e.med.QueryOpts("T", []string{"r1"}, nil, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != 2 {
		t.Fatalf("QueryResult.Version=%d, want 2", res.Version)
	}
}

// TestTrimAnnouncements pins the queue-compaction contract: the dropped
// tail is zeroed (so burst deltas become collectible) and oversized
// backing arrays are reallocated.
func TestTrimAnnouncements(t *testing.T) {
	big := make([]source.Announcement, 200)
	for i := range big {
		big[i] = source.Announcement{Source: fmt.Sprintf("s%d", i)}
	}
	kept := big[:3]
	out := trimAnnouncements(kept, 200)
	if len(out) != 3 {
		t.Fatalf("len=%d", len(out))
	}
	if cap(out) >= 200 {
		t.Errorf("oversized backing array retained: cap=%d", cap(out))
	}
	for i := 3; i < 200; i++ {
		if big[i].Source != "" {
			t.Fatalf("tail entry %d not zeroed", i)
		}
	}
	// Small or well-utilized slices are returned as-is.
	small := make([]source.Announcement, 10, 16)
	if got := trimAnnouncements(small, 10); cap(got) != 16 {
		t.Errorf("small slice reallocated: cap=%d", cap(got))
	}
}
