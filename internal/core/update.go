package core

import (
	"fmt"
	"time"

	"squirrel/internal/algebra"
	"squirrel/internal/clock"
	"squirrel/internal/delta"
	"squirrel/internal/metrics"
	"squirrel/internal/relation"
	"squirrel/internal/source"
	"squirrel/internal/store"
	"squirrel/internal/trace"
	"squirrel/internal/vdp"
)

// This file implements the Incremental Update Processor (§6.4): the
// three-phase general algorithm — (a) determine needed temporaries by
// simulating the kernel (vdp.KernelRequirements), (b) populate them with
// the VAP (to the pre-transaction state ref′(t_{i-1}), via Eager
// Compensation), (c) run the Kernel Algorithm, processing nodes in
// topological order with the sibling-state discipline that avoids the
// Example 6.1 anomaly. The kernel writes into a store.Builder — touched
// nodes are cloned copy-on-write, untouched relations stay shared — and
// the commit publishes the builder as the next version in one atomic
// swap, so concurrent readers never observe a partially propagated state.
//
// Locking: the transaction holds txnMu end to end (one update transaction
// at a time) but holds the store mutex mu only to prepare (queue snapshot
// + Begin) and to commit. The VAP polls and the kernel run outside mu, so
// a slow or hung source stalls only this transaction — queries were
// always lock-free, and now resyncs and sync'd readers stay unblocked
// too. The price is a race with ResyncSource, the one other post-init
// publisher: if it publishes while this transaction is in flight, the
// builder extends a superseded version and the commit-time base check
// discards it and retries the whole transaction against the new state.

// maxUpdateRetries bounds how often one RunUpdateTransaction call may be
// overtaken by concurrent publishes before giving up. Each retry means a
// ResyncSource committed during our poll window; back-to-back resyncs are
// pathological, so a small bound suffices.
const maxUpdateRetries = 8

// RunUpdateTransaction drains the update queue (the snapshot present when
// the transaction starts) and propagates the combined delta through the
// VDP. It reports whether a transaction ran (false when the queue was
// empty).
func (m *Mediator) RunUpdateTransaction() (bool, error) {
	m.txnMu.Lock()
	defer m.txnMu.Unlock()
	for attempt := 0; ; attempt++ {
		ran, retry, err := m.runUpdateOnce(attempt)
		if err != nil || !retry {
			return ran, err
		}
		if attempt == maxUpdateRetries {
			return false, fmt.Errorf("core: update transaction overtaken by %d concurrent publishes; giving up", attempt+1)
		}
		m.stats.txnRetries.Add(1)
		m.obs.txnRetries.Inc()
	}
}

// runUpdateOnce is one attempt: prepare under mu, poll and propagate
// outside it, commit under mu. retry reports that a concurrent publish
// superseded the builder's base and the caller should start over.
// attempt is the retry ordinal, recorded on the commit event.
func (m *Mediator) runUpdateOnce(attempt int) (ran, retry bool, err error) {
	start := time.Now()
	// The epoch is stable for the whole transaction: swaps happen only
	// under txnMu, which this transaction holds.
	ep := m.epoch()
	v := ep.v
	// Prepare: the queue prefix this transaction covers (empty_queue
	// time) and the builder's base version must name the same state, so
	// both are captured under mu — the lock every publisher holds.
	m.mu.Lock()
	if m.vstore.Current() == nil {
		m.mu.Unlock()
		return false, false, fmt.Errorf("core: mediator not initialized")
	}
	m.qmu.Lock()
	snapshot := append([]source.Announcement(nil), m.queue...)
	m.qmu.Unlock()
	b := m.vstore.Begin()
	m.mu.Unlock()
	if len(snapshot) == 0 {
		return false, false, nil
	}
	m.obs.txnPrepare.ObserveSince(start)

	combined, newRef := m.coalesceAnnouncements(snapshot)
	var temps *tempResult
	var captured map[string]*delta.RelDelta
	polled := 0
	dirty := combined.Relations()
	if len(dirty) > 0 {
		// Phase (a): which node states will the rules read?
		reqs, err := v.KernelRequirements(dirty)
		if err != nil {
			return false, false, err
		}
		var needed []vdp.Requirement
		for _, r := range reqs {
			if r.NeedsVirtual(v) {
				needed = append(needed, r)
			}
		}
		// Phase (b): populate them (the VAP compensates polls back to the
		// pre-transaction state ref′(t_{i-1}) — the builder's base view).
		// Always fail-fast: propagating deltas onto stale helper states
		// would corrupt the store; the queue survives for a later retry.
		if len(needed) > 0 {
			pollStart := time.Now()
			plan, err := v.PlanTemporaries(needed)
			if err != nil {
				return false, false, err
			}
			res, err := m.buildTemporaries(ep, plan, b, FailFast)
			if err != nil {
				return false, false, err
			}
			temps = res
			polled = res.polls
			m.obs.txnPolls.ObserveSince(pollStart)
		}
		// Phase (c): the Kernel Algorithm, writing copy-on-write into b.
		propStart := time.Now()
		captured, err = m.runKernel(b, combined, temps)
		if err != nil {
			return false, false, err
		}
		m.obs.txnPropagate.ObserveSince(propStart)
	}

	// Commit: remove the processed prefix, advance ref′, and publish the
	// new version. mu first: if another writer published while we were
	// polling, the builder extends a superseded version — applying it
	// would resurrect pre-resync state — so discard it and retry. While
	// the base is unchanged the snapshot is still exactly the queue's
	// prefix: only publishers remove queue entries, and they all hold mu.
	commitStart := time.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.vstore.Current() != b.Base() {
		return false, true, nil
	}
	// Durability point: the commit record must be on stable storage before
	// the version is published — a crash after the publish then recovers
	// this transaction from the log. Computed under mu but OUTSIDE qmu
	// (never hold the announcement lock across an fsync): every
	// lastProcessed writer holds mu, so the reflect vector computed here
	// is exactly what the qmu section below will install. A log failure
	// aborts the transaction — the queue still holds the announcements,
	// so a later flush retries once the log heals.
	reflect := m.lastProcessed.Clone()
	for src, t := range newRef {
		if t > reflect[src] {
			reflect[src] = t
		}
	}
	committed := m.clk.Now()
	if m.commitLog != nil {
		rec := &CommitRecord{
			Version:       b.Base().Seq() + 1,
			Stamp:         committed,
			Reflect:       reflect,
			NewRef:        newRef,
			Announcements: len(snapshot),
			Delta:         combined,
		}
		if err := m.commitLog.LogCommit(rec); err != nil {
			return false, false, fmt.Errorf("core: commit log: %w", err)
		}
	}
	// Under qmu, so a query pinning a version always sees a queue/done
	// state consistent with it. If some older version is pinned by an
	// in-flight polling query, the processed announcements move to the
	// done log (Eager Compensation against that version still needs their
	// deltas); otherwise they are dropped.
	m.qmu.Lock()
	if len(m.pins) > 0 {
		m.done = append(m.done, snapshot...)
	}
	oldLen := len(m.queue)
	kept := append(m.queue[:0], m.queue[len(snapshot):]...)
	m.queue = trimAnnouncements(kept, oldLen)
	for src, t := range newRef {
		if t > m.lastProcessed[src] {
			m.lastProcessed[src] = t
		}
	}
	published := m.vstore.Publish(b, reflect, committed)
	m.pruneDoneLocked()
	m.pruneEpochsLocked()
	m.obs.queueLen.Set(int64(len(m.queue)))
	m.qmu.Unlock()
	// Fan the committed version out to subscribers (subscribe.go): one
	// frame per eligible export, built from the kernel's captured ΔR.
	// Still under mu — publishes and subscription state stay ordered —
	// but never blocking: a slow subscriber coalesces, it cannot stall
	// the commit.
	m.subs.publish(published, captured)
	// And to the commit feed (feed.go): the export-as-source adapter
	// re-announces this commit as the tier's own, keyed by the version's
	// sequence number, before the next publish can happen.
	m.feedCommitLocked(published, captured)

	m.stats.updateTxns.Add(1)
	m.stats.atomsPropagated.Add(int64(combined.Card()))
	m.obs.txnCommit.ObserveSince(commitStart)
	m.obs.txnTotal.ObserveSince(start)
	m.obs.txnsTotal.Inc()
	seq := uint64(0)
	if v := m.vstore.Current(); v != nil {
		seq = v.Seq()
	}
	m.obs.reg.Emit(metrics.Event{
		Type: metrics.EventUpdateTxn, Dur: time.Since(start),
		Fields: map[string]int64{
			"atoms": int64(combined.Card()), "polls": int64(polled),
			"announcements": int64(len(snapshot)), "attempt": int64(attempt),
			"version": int64(seq),
		},
	})
	m.obs.reg.Emit(metrics.Event{
		Type: metrics.EventPublish, Subject: fmt.Sprintf("v%d", seq),
		Fields: map[string]int64{"version": int64(seq)},
	})
	m.recorder.RecordUpdate(trace.UpdateTxn{
		Committed: committed,
		Reflect:   reflect.Clone(),
		Atoms:     combined.Card(),
		Polled:    polled,
	})
	return true, false, nil
}

// coalesceAnnouncements combines a queue snapshot into one net delta per
// VDP leaf, tracking the latest announcement time per source (the new
// ref′ components). Multi-source announcements for the same relation
// smash additively, so duplicate or self-cancelling updates annihilate
// here — one combined RelDelta per leaf enters the kernel, and a fully
// cancelled queue still commits (advancing ref′) while propagating
// nothing.
func (m *Mediator) coalesceAnnouncements(snapshot []source.Announcement) (*delta.Delta, clock.Vector) {
	v := m.curVDP()
	combined := delta.New()
	newRef := make(clock.Vector)
	for _, a := range snapshot {
		for _, relName := range a.Delta.Relations() {
			leaf := v.Node(relName)
			if leaf == nil || !leaf.IsLeaf() || leaf.Source != a.Source {
				continue // irrelevant to this mediator
			}
			combined.Rel(relName).Smash(a.Delta.Get(relName))
		}
		if a.Time > newRef[a.Source] {
			newRef[a.Source] = a.Time
		}
	}
	return combined.Compact(), newRef
}

// runKernel dispatches phase (c) to the configured executor: the serial
// reference kernel (PropagateWorkers == 0, the differential oracle's
// ground truth) or the staged kernel (parallel.go). Both return the
// store-schema-projected ΔR applied to each stored node — the per-export
// delta stream the subscription registry ships (subscribe.go). Retaining
// the deltas by reference is safe: a node's pending accumulator receives
// no further Smash once the node is processed (its children all precede
// it in the topological order).
func (m *Mediator) runKernel(b *store.Builder, combined *delta.Delta, temps *tempResult) (map[string]*delta.RelDelta, error) {
	if m.workers >= 1 {
		return m.kernelStaged(b, combined, temps, m.workers)
	}
	return m.kernel(b, combined, temps)
}

// kernel runs the IUP Kernel Algorithm (§6.4) over the combined leaf delta
// with the given temporaries standing in for virtual/hybrid node states.
// All materialized reads and writes go through the builder, whose reads
// see the transaction's own writes first — the sibling-state discipline
// the in-place store used to provide. This serial form is the reference
// implementation: the staged kernel must produce byte-identical stores
// (randplan_test.go's differential oracle enforces it).
func (m *Mediator) kernel(b *store.Builder, combined *delta.Delta, temps *tempResult) (map[string]*delta.RelDelta, error) {
	var tempRels map[string]*relation.Relation
	if temps != nil {
		tempRels = temps.temps
	}
	resolve := resolverFor(b, tempRels)
	pending := make(map[string]*delta.RelDelta)
	captured := make(map[string]*delta.RelDelta)
	v := m.curVDP() // stable: the kernel runs under txnMu
	for _, name := range v.Order() {
		n := v.Node(name)
		var dn *delta.RelDelta
		if n.IsLeaf() {
			dn = combined.Get(name)
		} else {
			dn = pending[name]
		}
		if dn == nil || dn.IsEmpty() {
			continue
		}
		// Fire the rules of the in-edges: propagate Δ(name) to parents —
		// but only along paths that reach materialized data; virtual-only
		// subgraphs are the VAP's job.
		for _, parent := range v.Parents(name) {
			if !v.MaterializationRelevant(parent) {
				continue
			}
			contrib, err := v.Propagate(parent, name, dn, resolve)
			if err != nil {
				return nil, fmt.Errorf("core: rule (%s, %s): %w", parent, name, err)
			}
			if acc, ok := pending[parent]; ok {
				acc.Smash(contrib)
			} else {
				pending[parent] = contrib
			}
		}
		if n.IsLeaf() {
			continue // leaves hold no mediator state
		}
		// Process the node: apply Δ to its temporary (if any) and to the
		// materialized portion of its store. A temporary holds
		// π_B σ_cond of the node, so the delta passes through the same
		// selection before the projection (both commute with apply, §6.2).
		if temp, ok := tempRels[name]; ok {
			toApply := dn
			if cond := temps.conds[name]; !algebra.IsTrue(cond) {
				filtered, err := dn.Select(func(t relation.Tuple) (bool, error) {
					return algebra.EvalPred(cond, n.Schema, t)
				})
				if err != nil {
					return nil, err
				}
				toApply = filtered
			}
			narrowed, err := projectRelDelta(toApply, n.Schema, temp.Schema())
			if err != nil {
				return nil, err
			}
			if err := narrowed.ApplyTo(temp, true); err != nil {
				return nil, fmt.Errorf("core: applying Δ%s to temporary: %w", name, err)
			}
		}
		if st := b.Mutable(name); st != nil {
			narrowed, err := projectRelDelta(dn, n.Schema, st.Schema())
			if err != nil {
				return nil, err
			}
			if err := narrowed.ApplyTo(st, true); err != nil {
				return nil, fmt.Errorf("core: applying Δ%s to store: %w", name, err)
			}
			captured[name] = narrowed
		}
	}
	return captured, nil
}

// projectRelDelta narrows a full-width node delta onto the attributes of a
// narrower target (a temporary or a hybrid store projection).
func projectRelDelta(d *delta.RelDelta, full *relation.Schema, target *relation.Schema) (*delta.RelDelta, error) {
	if full.Arity() == target.Arity() {
		return d, nil
	}
	positions, err := full.Positions(target.AttrNames())
	if err != nil {
		return nil, err
	}
	return d.Project(d.Rel(), positions), nil
}
