package core

import (
	"fmt"

	"squirrel/internal/algebra"
	"squirrel/internal/clock"
	"squirrel/internal/relation"
	"squirrel/internal/sqlview"
	"squirrel/internal/store"
	"squirrel/internal/trace"
	"squirrel/internal/vdp"
)

// This file implements queries spanning several export relations — the
// general form of §6.3, whose VAP input is a SET of (R_i, A_i, f_i)
// triples. The QP extracts one requirement per referenced export,
// constructs every temporary in a single VAP invocation (so each source is
// polled at most once, as the consistency argument requires), and
// evaluates the relational expression over the assembled catalog. Like
// the single-export path, it pins one published store version: lock-free
// when every export is fully materialized, polling against the pinned
// version's ref′ otherwise.

// QueryExpr answers an arbitrary relational-algebra expression whose base
// relations are export relations of the integrated view.
func (m *Mediator) QueryExpr(expr algebra.RelExpr, opts QueryOptions) (*QueryResult, error) {
	for i := 0; i < maxEpochRetries; i++ {
		res, ok, err := m.queryExprOnce(expr, opts)
		if err != nil {
			return nil, err
		}
		if ok {
			return res, nil
		}
	}
	return nil, fmt.Errorf("core: query lost the plan-epoch race %d times", maxEpochRetries)
}

// queryExprOnce is one attempt against a consistent (epoch, version)
// pair; ok=false means a re-annotation swapped the epoch between the
// epoch read and the version pin — retry.
func (m *Mediator) queryExprOnce(expr algebra.RelExpr, opts QueryOptions) (*QueryResult, bool, error) {
	ep := m.epoch()
	pv := ep.v
	exports := algebra.BaseRelationsOf(expr)
	if len(exports) == 0 {
		return nil, false, fmt.Errorf("core: query references no relations")
	}
	var reqs []vdp.Requirement
	for _, name := range exports {
		n := pv.Node(name)
		if n == nil || !n.Export {
			return nil, false, fmt.Errorf("core: %q is not an export relation", name)
		}
		// Conservative: fetch every attribute of each referenced export
		// (projection pushdown into multi-export temporaries is an
		// optimization the single-export path already demonstrates).
		req, err := vdp.NewRequirement(pv, name, n.Schema.AttrNames(), nil)
		if err != nil {
			return nil, false, err
		}
		if req.NeedsVirtual(pv) {
			reqs = append(reqs, req)
		}
	}

	res := &tempResult{
		temps:    map[string]*relation.Relation{},
		polledAt: map[string]clock.Time{},
	}
	var v *store.Version
	var committed clock.Time
	var answer *relation.Relation
	if len(reqs) == 0 {
		// Every export fully materialized: lock-free fast path — stamp
		// while the version is provably current, then evaluate against it.
		var err error
		v, committed, err = m.pinFast()
		if err != nil {
			return nil, false, err
		}
		if m.planFor(v.Seq()) != ep {
			return nil, false, nil // epoch swapped underneath; retry
		}
		cat, err := m.exprCatalog(v, exports, res)
		if err != nil {
			return nil, false, err
		}
		answer, err = expr.Eval(cat)
		if err != nil {
			return nil, false, err
		}
	} else {
		v = m.pinVersion()
		if v == nil {
			return nil, false, fmt.Errorf("core: mediator not initialized")
		}
		defer m.unpinVersion(v)
		if m.planFor(v.Seq()) != ep {
			return nil, false, nil // epoch swapped underneath; retry
		}
		plan, err := pv.PlanTemporaries(reqs)
		if err != nil {
			return nil, false, err
		}
		res, err = m.buildTemporaries(ep, plan, v, opts.Degrade)
		if err != nil {
			return nil, false, err
		}
		cat, err := m.exprCatalog(v, exports, res)
		if err != nil {
			return nil, false, err
		}
		answer, err = expr.Eval(cat)
		if err != nil {
			return nil, false, err
		}
		committed = m.clk.Now()
	}

	reflect := m.reflectFor(ep, v, res, committed)

	// Same ServeStale stamping and f̄ enforcement as the single-export
	// path (query.go).
	var staleness clock.Vector
	if len(res.stale) > 0 {
		staleness = make(clock.Vector, len(res.stale))
		for src := range res.stale {
			bound := committed - reflect[src]
			if bound < 1 {
				bound = 1
			}
			if opts.MaxStaleness > 0 && bound > opts.MaxStaleness {
				return nil, false, fmt.Errorf("core: source %q is down and the degraded answer would be stale by %d (> max staleness %d)", src, bound, opts.MaxStaleness)
			}
			staleness[src] = bound
		}
		m.stats.degradedQueries.Add(1)
	}

	m.stats.queryTxns.Add(1)
	for _, name := range exports {
		m.obs.noteQuery(name, pv.Node(name).Schema.AttrNames())
	}
	m.recorder.RecordQuery(trace.QueryTxn{
		Committed: committed,
		Reflect:   reflect.Clone(),
		Multi:     expr,
		Answer:    answer.Clone(),
		Polled:    res.polls,
	})
	return &QueryResult{
		Answer:    answer,
		Reflect:   reflect,
		Committed: committed,
		Polled:    res.polls,
		Version:   v.Seq(),
		Degraded:  len(staleness) > 0,
		Staleness: staleness,
	}, true, nil
}

// exprCatalog assembles the evaluation catalog: temporaries where built,
// the pinned version's stores for fully materialized exports.
func (m *Mediator) exprCatalog(v *store.Version, exports []string, res *tempResult) (algebra.MapCatalog, error) {
	cat := make(algebra.MapCatalog, len(exports))
	for _, name := range exports {
		if temp, ok := res.temps[name]; ok {
			cat[name] = temp
			continue
		}
		st := v.Rel(name)
		if st == nil {
			return nil, fmt.Errorf("core: no state for export %q", name)
		}
		cat[name] = st
	}
	return cat, nil
}

// QueryExprSQL answers a multi-relation SELECT over export relations
// (joins, UNION, EXCEPT all permitted — the relations named in FROM must
// be exports).
func (m *Mediator) QueryExprSQL(sql string) (*QueryResult, error) {
	stmt, err := sqlview.Parse(sql)
	if err != nil {
		return nil, err
	}
	expr, err := stmt.ToRelExpr("answer")
	if err != nil {
		return nil, err
	}
	return m.QueryExpr(expr, QueryOptions{})
}
