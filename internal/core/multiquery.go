package core

import (
	"fmt"

	"squirrel/internal/algebra"
	"squirrel/internal/clock"
	"squirrel/internal/relation"
	"squirrel/internal/sqlview"
	"squirrel/internal/trace"
	"squirrel/internal/vdp"
)

// This file implements queries spanning several export relations — the
// general form of §6.3, whose VAP input is a SET of (R_i, A_i, f_i)
// triples. The QP extracts one requirement per referenced export,
// constructs every temporary in a single VAP invocation (so each source is
// polled at most once, as the consistency argument requires), and
// evaluates the relational expression over the assembled catalog.

// QueryExpr answers an arbitrary relational-algebra expression whose base
// relations are export relations of the integrated view.
func (m *Mediator) QueryExpr(expr algebra.RelExpr, opts QueryOptions) (*QueryResult, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.isInitialized() {
		return nil, fmt.Errorf("core: mediator not initialized")
	}
	exports := algebra.BaseRelationsOf(expr)
	if len(exports) == 0 {
		return nil, fmt.Errorf("core: query references no relations")
	}
	var reqs []vdp.Requirement
	for _, name := range exports {
		n := m.v.Node(name)
		if n == nil || !n.Export {
			return nil, fmt.Errorf("core: %q is not an export relation", name)
		}
		// Conservative: fetch every attribute of each referenced export
		// (projection pushdown into multi-export temporaries is an
		// optimization the single-export path already demonstrates).
		req, err := vdp.NewRequirement(m.v, name, n.Schema.AttrNames(), nil)
		if err != nil {
			return nil, err
		}
		if req.NeedsVirtual(m.v) {
			reqs = append(reqs, req)
		}
	}

	res := &tempResult{
		temps:    map[string]*relation.Relation{},
		polledAt: map[string]clock.Time{},
	}
	if len(reqs) > 0 {
		plan, err := m.v.PlanTemporaries(reqs)
		if err != nil {
			return nil, err
		}
		res, err = m.buildTemporaries(plan)
		if err != nil {
			return nil, err
		}
	}
	// Catalog: temporaries where built, stores for fully materialized
	// exports.
	cat := make(algebra.MapCatalog, len(exports))
	for _, name := range exports {
		if temp, ok := res.temps[name]; ok {
			cat[name] = temp
			continue
		}
		st, ok := m.store[name]
		if !ok {
			return nil, fmt.Errorf("core: no state for export %q", name)
		}
		cat[name] = st
	}
	answer, err := expr.Eval(cat)
	if err != nil {
		return nil, err
	}

	committed := m.clk.Now()
	m.qmu.Lock()
	reflect := make(clock.Vector, len(m.sources))
	for src := range m.sources {
		switch {
		case m.contributors[src] != VirtualContributor:
			reflect[src] = m.lastProcessed[src]
		case res.polledAt[src] != 0:
			reflect[src] = res.polledAt[src]
		default:
			reflect[src] = committed
		}
	}
	m.qmu.Unlock()

	m.stats.QueryTxns++
	m.recorder.RecordQuery(trace.QueryTxn{
		Committed: committed,
		Reflect:   reflect.Clone(),
		Multi:     expr,
		Answer:    answer.Clone(),
		Polled:    res.polls,
	})
	return &QueryResult{
		Answer:    answer,
		Reflect:   reflect,
		Committed: committed,
		Polled:    res.polls,
	}, nil
}

// QueryExprSQL answers a multi-relation SELECT over export relations
// (joins, UNION, EXCEPT all permitted — the relations named in FROM must
// be exports).
func (m *Mediator) QueryExprSQL(sql string) (*QueryResult, error) {
	stmt, err := sqlview.Parse(sql)
	if err != nil {
		return nil, err
	}
	expr, err := stmt.ToRelExpr("answer")
	if err != nil {
		return nil, err
	}
	return m.QueryExpr(expr, QueryOptions{})
}
