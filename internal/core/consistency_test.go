package core

import (
	"math/rand"
	"testing"

	"squirrel/internal/checker"
	"squirrel/internal/source"
	"squirrel/internal/vdp"
)

// TestTheorem71Consistency runs randomized workloads through every
// annotation configuration and verifies the §3 consistency definition
// against the recorded trace — validity (answers equal ν at the reported
// ref vector, replayed from the source commit logs), chronology, and
// order preservation. This is the executable content of Theorem 7.1.
func TestTheorem71Consistency(t *testing.T) {
	for name, anns := range soakConfigs() {
		t.Run(name, func(t *testing.T) {
			for seed := int64(0); seed < 6; seed++ {
				rng := rand.New(rand.NewSource(seed + 100))
				e := newEnv(t, anns[0], anns[1], anns[2])
				for step := 0; step < 30; step++ {
					switch op := rng.Intn(10); {
					case op < 4:
						randomCommit(t, e, rng)
					case op < 7:
						if _, err := e.med.RunUpdateTransaction(); err != nil {
							t.Fatal(err)
						}
					default:
						attrs := [][]string{{"r1", "s1"}, {"r1", "r3"}, {"s1", "s2"}, nil}[rng.Intn(4)]
						mode := []KeyBasedMode{KeyBasedAuto, KeyBasedOff, KeyBasedForce}[rng.Intn(3)]
						if _, err := e.med.QueryOpts("T", attrs, nil, QueryOptions{KeyBased: mode}); err != nil {
							t.Fatal(err)
						}
					}
				}
				env := checker.Environment{
					VDP:     e.vdp_,
					Sources: map[string]*source.DB{"db1": e.db1, "db2": e.db2},
					Trace:   e.rec,
				}
				if err := env.CheckConsistency(); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				_, q := e.rec.Len()
				if q == 0 {
					t.Fatalf("seed %d: no queries recorded", seed)
				}
			}
		})
	}
}

// TestReflectVectorSemantics spot-checks the ref construction of §6.1:
// materialized contributors carry ref′; uninvolved virtual contributors
// carry the query commit time.
func TestReflectVectorSemantics(t *testing.T) {
	e := newEnv(t, nil, nil, nil)
	res, err := e.med.QueryOpts("T", []string{"r1"}, nil, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	lp := e.med.LastProcessed()
	for _, src := range []string{"db1", "db2"} {
		if res.Reflect[src] != lp[src] {
			t.Errorf("%s: reflect %d != ref′ %d", src, res.Reflect[src], lp[src])
		}
		if res.Reflect[src] > res.Committed {
			t.Errorf("%s: chronology violated", src)
		}
	}

	// Fully virtual plan: sources are virtual contributors; an uninvolved
	// one gets the commit time, an involved one its poll instant.
	rp := e.vdp_.Node("R'").Schema
	sp := e.vdp_.Node("S'").Schema
	tS := e.vdp_.Node("T").Schema
	e2 := newEnv(t, vdp.AllVirtual(rp), vdp.AllVirtual(sp), vdp.AllVirtual(tS))
	res2, err := e2.med.QueryOpts("T", nil, nil, QueryOptions{KeyBased: KeyBasedOff})
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range []string{"db1", "db2"} {
		if e2.med.Contributor(src) != VirtualContributor {
			t.Fatalf("%s should be virtual contributor", src)
		}
		if res2.Reflect[src] >= res2.Committed {
			t.Errorf("%s: polled reflect should be the poll instant (< commit)", src)
		}
	}
	if res2.Polled != 2 {
		t.Errorf("fully virtual query polls both sources: %d", res2.Polled)
	}
}
