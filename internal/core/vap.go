package core

import (
	"fmt"
	"sort"
	"time"

	"squirrel/internal/algebra"
	"squirrel/internal/clock"
	"squirrel/internal/delta"
	"squirrel/internal/relation"
	"squirrel/internal/source"
	"squirrel/internal/store"
	"squirrel/internal/vdp"
)

// This file implements the Virtual Attribute Processor (§6.3): given a
// planned set of temporary-relation requirements (children-first), it
// polls source databases for the leaf-parent temporaries — with Eager
// Compensation for announcing (materialized/hybrid-contributor) sources so
// the answers correspond to the view's ref′, and single-transaction
// packaging for virtual contributors — and evaluates the higher
// temporaries bottom-up. All reads of materialized state go through a
// store.View: a pinned published version for query transactions, the
// in-progress Builder for update transactions.

// tempResult carries constructed temporaries and poll bookkeeping.
type tempResult struct {
	temps map[string]*relation.Relation
	// conds records each temporary's selection condition (the
	// requirement's Cond): a temp holds π_B σ_cond of its node, so any
	// delta applied to it during the kernel run must pass through the
	// same selection.
	conds map[string]algebra.Expr
	// polledAt records, per virtual-contributor source polled, the
	// serialization instant of the read (these become the ref components
	// of the ongoing query transaction).
	polledAt map[string]clock.Time
	// stale records, per source whose poll failed and was served from the
	// raw poll cache instead, the cached answer's serialization instant.
	// Empty for fail-fast builds. The query layer turns membership into
	// the stamped staleness bound (Committed − Reflect[src]).
	stale  map[string]clock.Time
	polls  int
	tuples int
}

// resolverFor resolves node states to temporaries first, then to the
// given view of the materialized store.
func resolverFor(view store.View, temps map[string]*relation.Relation) vdp.Resolver {
	return func(name string) (*relation.Relation, error) {
		if temps != nil {
			if r, ok := temps[name]; ok {
				return r, nil
			}
		}
		if r := view.Rel(name); r != nil {
			return r, nil
		}
		return nil, fmt.Errorf("core: no temporary or materialized state for %q", name)
	}
}

// buildTemporaries executes phase two of the VAP for an already-expanded
// plan (from vdp.PlanTemporaries), reading materialized state — and
// compensating polls back to ref′ — from the given view. ep is the plan
// epoch the requirements were planned under; the view must be a version
// (or builder base) that epoch governs, so the store layout and the
// contributor classification agree with the plan. Safe to call
// concurrently for distinct tempResults: the only shared state it touches
// is the announcement log (under qmu), the poll cache (under cmu), and
// atomic counters.
//
// degrade selects what happens when a source poll fails after the fault
// boundary (retry, breaker, deadline) is exhausted: FailFast propagates
// the error; ServeStale falls back to the raw answer cached from the last
// successful poll of the same shape, recording the source in res.stale so
// the query layer can stamp and enforce the staleness bound. The fallback
// keeps the answer EXACT at its Reflect vector: for an announcing source
// the cached answer is only usable when its instant is at or past the
// view's ref′(src) — then every announcement in the compensation window
// is still retained (it was unprocessed when the version was pinned), so
// Eager Compensation rolls it back to ref′(src) as usual; for a virtual
// contributor the cached instant simply becomes the poll instant. Update
// transactions always build fail-fast: propagating source deltas onto
// stale helper states would corrupt the store.
func (m *Mediator) buildTemporaries(ep *planEpoch, plan []vdp.Requirement, view store.View, degrade DegradeMode) (*tempResult, error) {
	v := ep.v
	res := &tempResult{
		temps:    make(map[string]*relation.Relation),
		conds:    make(map[string]algebra.Expr),
		polledAt: make(map[string]clock.Time),
		stale:    make(map[string]clock.Time),
	}
	// Split the plan: leaf-parent requirements are satisfied by polling;
	// the rest bottom-up. Plan order is already children-first.
	type pollItem struct {
		req  vdp.Requirement
		spec vdp.PollSpec
	}
	bySource := make(map[string][]pollItem)
	var upper []vdp.Requirement
	for _, req := range plan {
		if !req.NeedsVirtual(v) {
			continue // served directly from the store
		}
		if v.IsLeafParent(req.Rel) {
			spec, err := v.LeafParentPollSpec(req)
			if err != nil {
				return nil, err
			}
			bySource[spec.Source] = append(bySource[spec.Source], pollItem{req: req, spec: spec})
			continue
		}
		upper = append(upper, req)
	}

	// Poll each source once, packaging all its reads into a single
	// transaction (§6.3's requirement for virtual contributors; harmless
	// and efficient for hybrid contributors too). Distinct sources share
	// no poll state — the fault boundary is per source, and the poll
	// cache and announcement log sit behind leaf locks — so when the
	// mediator is configured with a worker pool (PropagateWorkers > 1)
	// the polls issue concurrently and their latencies overlap. Answers
	// are then compensated and merged serially in sorted source order,
	// which keeps the constructed temporaries (and the first reported
	// error) deterministic regardless of poll completion order.
	sources := make([]string, 0, len(bySource))
	for s := range bySource {
		sources = append(sources, s)
	}
	sort.Strings(sources)
	type pollOut struct {
		items   []pollItem
		answers []*relation.Relation
		asOf    clock.Time
		stale   bool
	}
	outs := make([]pollOut, len(sources))
	pollWorkers := 1
	if m.workers > 1 {
		pollWorkers = m.workers
	}
	if err := runBounded(pollWorkers, len(sources), func(i int) error {
		src := sources[i]
		o := &outs[i]
		o.items = bySource[src]
		specs := make([]source.QuerySpec, len(o.items))
		for j, it := range o.items {
			specs[j] = source.QuerySpec{Rel: it.spec.Leaf, Attrs: it.spec.Attrs, Cond: it.spec.Cond}
		}
		key := pollKey(src, specs)
		answers, asOf, err := m.pollSource(src, specs, false)
		if err == nil {
			// Cache the raw answers before compensation mutates them.
			m.cachePoll(key, answers, asOf)
			o.answers, o.asOf = answers, asOf
			return nil
		}
		if degrade != ServeStale {
			return fmt.Errorf("core: polling %s: %w", src, err)
		}
		cached, cachedAsOf, ok := m.cachedAnswers(key)
		if !ok {
			return fmt.Errorf("core: polling %s (no cached answer to degrade to): %w", src, err)
		}
		if ep.contributors[src] != VirtualContributor && cachedAsOf < view.RefOf(src) {
			return fmt.Errorf("core: polling %s (cached answer predates the materialized state): %w", src, err)
		}
		o.answers, o.asOf, o.stale = cached, cachedAsOf, true
		return nil
	}); err != nil {
		return nil, err
	}
	for i, src := range sources {
		o := &outs[i]
		announcing := ep.contributors[src] != VirtualContributor
		if o.stale {
			res.stale[src] = o.asOf
		} else {
			res.polls++
			m.stats.sourcePolls.Add(1)
		}
		if !announcing {
			res.polledAt[src] = o.asOf
		}
		for j, it := range o.items {
			ans := o.answers[j]
			res.tuples += ans.Len()
			m.stats.tuplesPolled.Add(int64(ans.Len()))
			if announcing {
				// Eager Compensation: roll the answer back to the view's
				// ref′(src) by undoing every announced update from this
				// source that the answer reflects but the view does not.
				if err := m.compensate(ans, src, it.spec, o.asOf, view); err != nil {
					return nil, err
				}
			}
			temp, err := leafParentTemp(v, it.req, it.spec, ans)
			if err != nil {
				return nil, err
			}
			res.temps[it.req.Rel] = temp
			res.conds[it.req.Rel] = it.req.Cond
			m.stats.tempsBuilt.Add(1)
		}
	}

	// Build the remaining temporaries bottom-up.
	resolve := resolverFor(view, res.temps)
	for _, req := range upper {
		n := v.Node(req.Rel)
		temp, err := vdp.EvalRestricted(n, req.AttrList(v), req.Cond, resolve)
		if err != nil {
			return nil, fmt.Errorf("core: constructing temporary for %s: %w", req.Rel, err)
		}
		res.temps[req.Rel] = temp
		res.conds[req.Rel] = req.Cond
		m.stats.tempsBuilt.Add(1)
	}
	return res, nil
}

// compensate applies the inverse smash of the announced updates from src
// in the window (view.RefOf(src), asOf] to the poll answer, pushed through
// the poll's selection and projection — the Eager Compensation Algorithm
// generalization of §6.3. The window scans both the retained done log
// (announcements already folded into newer versions than the pinned one)
// and the live queue, so a query pinned to an older version still rolls
// its polls all the way back to that version's ref′.
func (m *Mediator) compensate(answer *relation.Relation, src string, spec vdp.PollSpec, asOf clock.Time, view store.View) error {
	start := time.Now()
	defer func() { m.obs.compensation.ObserveSince(start) }()
	base := view.RefOf(src)
	pending := delta.NewRel(spec.Leaf)
	collect := func(list []source.Announcement) {
		for _, a := range list {
			if a.Source != src || a.Time <= base || a.Time > asOf {
				continue
			}
			if rd := a.Delta.Get(spec.Leaf); rd != nil {
				pending.Smash(rd)
			}
		}
	}
	m.qmu.Lock()
	if base < m.resyncBarrier[src] {
		// The view predates a resync of src: the announcement gap lost
		// deltas inside the compensation window, so rolling back to this
		// ref′ is impossible. Refuse rather than answer wrong; the caller
		// retries against the current version.
		m.qmu.Unlock()
		return fmt.Errorf("core: pinned state for %q predates its resync; retry against the current version", src)
	}
	collect(m.done)
	collect(m.queue)
	m.qmu.Unlock()
	if pending.IsEmpty() {
		return nil
	}
	leafSchema, ok := m.leafSchemas[spec.Leaf]
	if !ok {
		return fmt.Errorf("core: unknown leaf %q", spec.Leaf)
	}
	// Selection and projection commute with apply (§6.2), so transform the
	// pending delta exactly as the source transformed the data.
	selected, err := pending.Select(func(t relation.Tuple) (bool, error) {
		return algebra.EvalPred(spec.Cond, leafSchema, t)
	})
	if err != nil {
		return err
	}
	attrs := spec.Attrs
	if attrs == nil {
		attrs = leafSchema.AttrNames()
	}
	positions, err := leafSchema.Positions(attrs)
	if err != nil {
		return err
	}
	projected := selected.Project(spec.Leaf, positions)
	if err := projected.Inverse().ApplyTo(answer, true); err != nil {
		return fmt.Errorf("core: eager compensation for %s/%s: %w", src, spec.Leaf, err)
	}
	return nil
}

// leafParentTemp converts a compensated poll answer (over the poll's leaf
// attributes) into the temporary relation for the leaf-parent node:
// project to the requirement's attributes, in the node's attribute order.
func leafParentTemp(v *vdp.VDP, req vdp.Requirement, spec vdp.PollSpec, answer *relation.Relation) (*relation.Relation, error) {
	n := v.Node(req.Rel)
	attrs := req.AttrList(v)
	schema, err := n.Schema.Project(n.Name, attrs)
	if err != nil {
		return nil, err
	}
	positions, err := answer.Schema().Positions(attrs)
	if err != nil {
		return nil, err
	}
	out := relation.NewBag(schema)
	answer.Each(func(t relation.Tuple, c int) bool {
		out.Add(t.Project(positions), c)
		return true
	})
	return out, nil
}

// projectSelectLocal computes π_attrs σ_cond over a materialized relation
// (used by the QP fast path and for final answers over temporaries).
func projectSelectLocal(rel *relation.Relation, name string, attrs []string, cond algebra.Expr) (*relation.Relation, error) {
	if attrs == nil {
		attrs = rel.Schema().AttrNames()
	}
	schema, err := rel.Schema().Project(name, attrs)
	if err != nil {
		return nil, err
	}
	positions, err := rel.Schema().Positions(attrs)
	if err != nil {
		return nil, err
	}
	out := relation.NewBag(schema)
	var evalErr error
	rel.Each(func(t relation.Tuple, c int) bool {
		ok, err := algebra.EvalPred(cond, rel.Schema(), t)
		if err != nil {
			evalErr = err
			return false
		}
		if ok {
			out.Add(t.Project(positions), c)
		}
		return true
	})
	if evalErr != nil {
		return nil, evalErr
	}
	return out, nil
}
