package trace

import (
	"strings"
	"sync"
	"testing"

	"squirrel/internal/clock"
	"squirrel/internal/relation"
)

func TestRecorderBasics(t *testing.T) {
	r := NewRecorder()
	u, q := r.Len()
	if u != 0 || q != 0 {
		t.Fatalf("fresh recorder: %d %d", u, q)
	}
	r.RecordUpdate(UpdateTxn{Committed: 5, Reflect: clock.Vector{"db": 4}, Atoms: 3})
	ans := relation.NewBag(relation.MustSchema("V", []relation.Attribute{{Name: "a", Type: relation.KindInt}}))
	ans.Insert(relation.T(1))
	r.RecordQuery(QueryTxn{Committed: 7, Reflect: clock.Vector{"db": 4}, Export: "V", Answer: ans})

	updates, queries := r.Updates(), r.Queries()
	if len(updates) != 1 || updates[0].Atoms != 3 {
		t.Errorf("updates = %+v", updates)
	}
	if len(queries) != 1 || queries[0].Export != "V" || queries[0].Answer.Card() != 1 {
		t.Errorf("queries = %+v", queries)
	}
	// Returned slices are copies.
	updates[0].Atoms = 99
	if r.Updates()[0].Atoms != 3 {
		t.Errorf("Updates must return a copy")
	}
	if !strings.Contains(r.String(), "1 update txns, 1 query txns") {
		t.Errorf("String = %q", r.String())
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	r.RecordUpdate(UpdateTxn{}) // must not panic
	r.RecordQuery(QueryTxn{})
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.RecordUpdate(UpdateTxn{Committed: clock.Time(i)})
				r.RecordQuery(QueryTxn{Committed: clock.Time(i)})
				r.Len()
				r.Updates()
			}
		}()
	}
	wg.Wait()
	u, q := r.Len()
	if u != 400 || q != 400 {
		t.Errorf("counts: %d %d", u, q)
	}
}
