// Package trace records the observable history of a mediator run — update
// transactions with their ref′ vectors and query transactions with their
// ref vectors and answers — in the vocabulary of §6.1. The checker package
// replays source logs against these records to verify the consistency and
// freshness theorems (§7).
package trace

import (
	"fmt"
	"sync"

	"squirrel/internal/algebra"
	"squirrel/internal/clock"
	"squirrel/internal/relation"
)

// UpdateTxn records one execution of the IUP: the commit time t_i^u and
// the constructed ref′(t_i^u) vector (per materialized/hybrid-contributor
// source, the commit time of the last update incorporated).
type UpdateTxn struct {
	Committed clock.Time
	Reflect   clock.Vector
	// Atoms is the number of delta atoms propagated (for experiments).
	Atoms int
	// Polled counts source databases polled during the transaction.
	Polled int
}

// QueryTxn records one query transaction: the commit time t_j^q, the
// ref(t_j^q) vector, the query (export, projection, condition — or, for
// multi-export queries, the full relational expression in Multi), and the
// answer produced.
type QueryTxn struct {
	Committed clock.Time
	Reflect   clock.Vector
	Export    string
	Attrs     []string
	Cond      algebra.Expr
	// Multi, when non-nil, is a multi-export query expression; Export,
	// Attrs and Cond are unused then.
	Multi  algebra.RelExpr
	Answer *relation.Relation
	// Polled counts source databases polled to answer this query.
	Polled int
	// KeyBased reports whether the key-based construction was used.
	KeyBased bool
}

// Recorder accumulates transactions; safe for concurrent use.
type Recorder struct {
	mu      sync.Mutex
	updates []UpdateTxn
	queries []QueryTxn
}

// NewRecorder creates an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// RecordUpdate appends an update transaction.
func (r *Recorder) RecordUpdate(u UpdateTxn) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.updates = append(r.updates, u)
}

// RecordQuery appends a query transaction.
func (r *Recorder) RecordQuery(q QueryTxn) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.queries = append(r.queries, q)
}

// Updates returns a copy of the recorded update transactions.
func (r *Recorder) Updates() []UpdateTxn {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]UpdateTxn(nil), r.updates...)
}

// Queries returns a copy of the recorded query transactions.
func (r *Recorder) Queries() []QueryTxn {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]QueryTxn(nil), r.queries...)
}

// Len reports (updates, queries) counts.
func (r *Recorder) Len() (int, int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.updates), len(r.queries)
}

// String summarizes the trace.
func (r *Recorder) String() string {
	u, q := r.Len()
	return fmt.Sprintf("trace{%d update txns, %d query txns}", u, q)
}
