package clock

import (
	"sync"
	"testing"
)

func TestLogicalStrictlyIncreasing(t *testing.T) {
	c := &Logical{}
	prev := Time(-1)
	for i := 0; i < 1000; i++ {
		now := c.Now()
		if now <= prev {
			t.Fatalf("clock regressed: %d after %d", now, prev)
		}
		prev = now
	}
	if c.Peek() != prev {
		t.Errorf("Peek = %d, want %d", c.Peek(), prev)
	}
}

func TestLogicalConcurrentUnique(t *testing.T) {
	c := &Logical{}
	const goroutines, per = 8, 200
	var mu sync.Mutex
	seen := make(map[Time]bool, goroutines*per)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]Time, 0, per)
			for i := 0; i < per; i++ {
				local = append(local, c.Now())
			}
			mu.Lock()
			defer mu.Unlock()
			for _, ts := range local {
				if seen[ts] {
					t.Errorf("duplicate timestamp %d", ts)
				}
				seen[ts] = true
			}
		}()
	}
	wg.Wait()
	if len(seen) != goroutines*per {
		t.Errorf("got %d unique timestamps", len(seen))
	}
}

func TestVectorOps(t *testing.T) {
	v := Vector{"a": 1, "b": 2}
	c := v.Clone()
	c["a"] = 99
	if v["a"] != 1 {
		t.Errorf("clone aliases original")
	}
	if !(Vector{"a": 1, "b": 2}).LessEq(Vector{"a": 1, "b": 3}) {
		t.Errorf("LessEq pointwise")
	}
	if (Vector{"a": 2}).LessEq(Vector{"a": 1}) {
		t.Errorf("LessEq should fail")
	}
	// Missing component in the left side reads as Never (≤ anything).
	if !(Vector{}).LessEq(Vector{"a": 0}) {
		t.Errorf("empty vector precedes everything")
	}
	// Left has a component the right lacks: not ≤.
	if (Vector{"z": 5}).LessEq(Vector{"a": 9}) {
		t.Errorf("extra later component cannot be ≤")
	}
	if !(Vector{"a": 3}).AllAtOrBefore(3) || (Vector{"a": 4}).AllAtOrBefore(3) {
		t.Errorf("AllAtOrBefore")
	}
}
