// Package clock models the paper's global time (§3): a totally ordered
// set in which no two events occur at precisely the same instant. Database
// processes never read each other's clocks; the shared clock exists so the
// reproduction can *verify* consistency and freshness, exactly as the
// paper's formal development assumes an external global time.
package clock

import "sync"

// Time is a point on the global timeline. The unit is arbitrary (the
// discrete-event simulator interprets it as microseconds).
type Time int64

// Never is a sentinel earlier than every real time.
const Never Time = -1

// Clock issues strictly increasing timestamps: every call to Now returns a
// value greater than every previously returned value, giving each event a
// unique time.
type Clock interface {
	Now() Time
}

// Logical is a strictly increasing in-process clock; the zero value is
// ready to use.
type Logical struct {
	mu   sync.Mutex
	last Time
}

// Now returns the next timestamp.
func (c *Logical) Now() Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.last++
	return c.last
}

// Peek returns the most recently issued timestamp without advancing.
func (c *Logical) Peek() Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.last
}

// Vector is a time vector t̄ = ⟨t_1, ..., t_n⟩ keyed by source name (§3).
type Vector map[string]Time

// Clone returns a copy of the vector.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	for k, t := range v {
		out[k] = t
	}
	return out
}

// LessEq reports v ≤ o pointwise over o's keys (missing entries in v read
// as Never, i.e. before everything).
func (v Vector) LessEq(o Vector) bool {
	for k, t := range o {
		if v[k] > t {
			return false
		}
	}
	for k, t := range v {
		if _, ok := o[k]; !ok && t > Never {
			// v has a later entry for a source o lacks: not comparable as ≤
			// unless o's implicit value dominates, which Never does not.
			return false
		}
	}
	return true
}

// AllAtOrBefore reports whether every component of v is ≤ t (chronology:
// the view never forecasts the future).
func (v Vector) AllAtOrBefore(t Time) bool {
	for _, ti := range v {
		if ti > t {
			return false
		}
	}
	return true
}
