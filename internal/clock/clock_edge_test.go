package clock

import (
	"sync"
	"testing"
)

// TestLogicalConcurrentMonotonic: beyond global uniqueness (see
// TestLogicalConcurrentUnique), each goroutine must observe its OWN
// reads strictly increasing — a torn update to last could hand a
// goroutine a stamp older than one it already holds. Run under -race
// this also exercises the mutex on the Now fast path.
func TestLogicalConcurrentMonotonic(t *testing.T) {
	c := &Logical{}
	const goroutines, per = 8, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			prev := Time(-1)
			for i := 0; i < per; i++ {
				now := c.Now()
				if now <= prev {
					t.Errorf("Now went backwards: %d after %d", now, prev)
					return
				}
				prev = now
			}
		}()
	}
	wg.Wait()
	if final := c.Peek(); final != goroutines*per {
		t.Errorf("Peek() = %d after %d draws", final, goroutines*per)
	}
}

// TestPeekDoesNotAdvance: Peek between concurrent Now calls never
// consumes a timestamp and never exceeds the draws made so far.
func TestPeekDoesNotAdvance(t *testing.T) {
	c := &Logical{}
	const draws = 200
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < draws; i++ {
			c.Now()
		}
	}()
	for {
		select {
		case <-done:
			if c.Peek() != draws {
				t.Errorf("Peek() = %d, want %d", c.Peek(), draws)
			}
			return
		default:
			if p := c.Peek(); p > draws {
				t.Fatalf("Peek() = %d exceeds total draws %d", p, draws)
			}
		}
	}
}
