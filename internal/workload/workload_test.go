package workload

import (
	"math/rand"
	"testing"

	"squirrel/internal/relation"
)

func testGen(t *testing.T) *TupleGen {
	t.Helper()
	s := relation.MustSchema("R", []relation.Attribute{
		{Name: "id", Type: relation.KindInt}, {Name: "grp", Type: relation.KindInt},
		{Name: "tag", Type: relation.KindString}}, "id")
	g, err := NewTupleGen(s, NewSeq(1), IntRange{Lo: 1, Hi: 10}, Strings("a", "b", "c"))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestDomains(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		v := (IntRange{Lo: 5, Hi: 7}).Draw(rng).AsInt()
		if v < 5 || v > 7 {
			t.Fatalf("IntRange out of range: %d", v)
		}
	}
	for i := 0; i < 100; i++ {
		v := (IntZipf{N: 50, S: 1.5}).Draw(rng).AsInt()
		if v < 1 || v > 50 {
			t.Fatalf("IntZipf out of range: %d", v)
		}
	}
	seq := NewSeq(10)
	if seq.Draw(rng).AsInt() != 10 || seq.Draw(rng).AsInt() != 11 {
		t.Errorf("Seq not sequential")
	}
	c := Strings("x", "y")
	got := c.Draw(rng).AsString()
	if got != "x" && got != "y" {
		t.Errorf("Choice drew %q", got)
	}
}

func TestTupleGenArity(t *testing.T) {
	s := relation.MustSchema("R", []relation.Attribute{{Name: "a", Type: relation.KindInt}})
	if _, err := NewTupleGen(s); err == nil {
		t.Errorf("domain count mismatch must fail")
	}
}

func TestPopulateRespectsKey(t *testing.T) {
	g := testGen(t)
	rng := rand.New(rand.NewSource(2))
	r := g.Populate(rng, 500)
	if r.Len() != 500 {
		t.Fatalf("populated %d", r.Len())
	}
	keys := make(map[int64]bool)
	r.Each(func(tp relation.Tuple, _ int) bool {
		id := tp[0].AsInt()
		if keys[id] {
			t.Errorf("duplicate key %d", id)
		}
		keys[id] = true
		return true
	})
}

func TestStreamNonRedundant(t *testing.T) {
	g := testGen(t)
	rng := rand.New(rand.NewSource(3))
	initial := g.Populate(rng, 100)
	st := NewStream(g, 7, initial)
	mirror := initial.Clone()
	for i := 0; i < 50; i++ {
		d := st.Transaction(5)
		rd := d.Get("R")
		if rd == nil {
			continue
		}
		// Strict application must succeed: the stream never emits
		// redundant atoms.
		if err := rd.ApplyTo(mirror, true); err != nil {
			t.Fatalf("transaction %d redundant: %v", i, err)
		}
	}
	if !mirror.Equal(st.Live()) {
		t.Fatalf("stream mirror diverged")
	}
}

func TestStreamDeterministic(t *testing.T) {
	// Use stateless domains (IntRange keys) so two streams with equal
	// seeds draw identical operations.
	s := relation.MustSchema("R", []relation.Attribute{
		{Name: "id", Type: relation.KindInt}, {Name: "grp", Type: relation.KindInt}}, "id")
	mk := func() *TupleGen {
		g, err := NewTupleGen(s, IntRange{Lo: 1, Hi: 100000}, IntRange{Lo: 1, Hi: 10})
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	g1, g2 := mk(), mk()
	rng := rand.New(rand.NewSource(4))
	initial := g1.Populate(rng, 50)
	a := NewStream(g1, 42, initial)
	b := NewStream(g2, 42, initial)
	for i := 0; i < 3; i++ {
		da, db := a.Transaction(4), b.Transaction(4)
		if !da.Equal(db) {
			t.Fatalf("streams with equal seeds diverged at txn %d:\n%svs\n%s", i, da, db)
		}
	}
}

func TestQueryMix(t *testing.T) {
	shapes := [][]string{{"a"}, {"a", "b"}, {"c"}}
	m, err := NewQueryMix(5, shapes, []float64{8, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for i := 0; i < 1000; i++ {
		s := m.Draw()
		for j, sh := range shapes {
			if len(sh) == len(s) && sh[0] == s[0] {
				counts[j]++
				break
			}
		}
	}
	if counts[0] < 600 {
		t.Errorf("weighting off: %v", counts)
	}
	if _, err := NewQueryMix(1, shapes, []float64{1}); err == nil {
		t.Errorf("mismatched weights must fail")
	}
	if _, err := NewQueryMix(1, shapes, []float64{0, 0, 0}); err == nil {
		t.Errorf("zero weights must fail")
	}
	if _, err := NewQueryMix(1, shapes, []float64{-1, 1, 1}); err == nil {
		t.Errorf("negative weight must fail")
	}
	if _, err := NewQueryMix(1, nil, nil); err == nil {
		t.Errorf("empty mix must fail")
	}
}
