// Package workload provides seeded, reproducible generators for the
// experiment harness: initial relation populations, source update streams
// with configurable insert/delete mixes and skew, and query mixes over
// materialized and virtual attributes. Everything is deterministic given
// the seed, so benchmark tables regenerate identically.
package workload

import (
	"fmt"
	"math/rand"

	"squirrel/internal/delta"
	"squirrel/internal/relation"
)

// Domain draws values for one attribute.
type Domain interface {
	Draw(rng *rand.Rand) relation.Value
}

// IntRange draws uniform integers from [Lo, Hi].
type IntRange struct{ Lo, Hi int64 }

// Draw implements Domain.
func (d IntRange) Draw(rng *rand.Rand) relation.Value {
	return relation.Int(d.Lo + rng.Int63n(d.Hi-d.Lo+1))
}

// IntZipf draws integers in [1, N] with Zipf skew s (>1); heavier skew
// concentrates mass on small values — used for skewed join keys.
type IntZipf struct {
	N uint64
	S float64
}

// Draw implements Domain.
func (d IntZipf) Draw(rng *rand.Rand) relation.Value {
	z := rand.NewZipf(rng, d.S, 1, d.N-1)
	return relation.Int(int64(z.Uint64()) + 1)
}

// Seq draws strictly increasing integers starting at Start — a synthetic
// key generator.
type Seq struct{ next int64 }

// NewSeq starts a sequence at start.
func NewSeq(start int64) *Seq { return &Seq{next: start} }

// Draw implements Domain.
func (s *Seq) Draw(*rand.Rand) relation.Value {
	v := relation.Int(s.next)
	s.next++
	return v
}

// Choice draws uniformly from explicit values.
type Choice struct{ Values []relation.Value }

// Draw implements Domain.
func (c Choice) Draw(rng *rand.Rand) relation.Value {
	return c.Values[rng.Intn(len(c.Values))]
}

// Strings builds a Choice over string values.
func Strings(vals ...string) Choice {
	c := Choice{}
	for _, v := range vals {
		c.Values = append(c.Values, relation.Str(v))
	}
	return c
}

// TupleGen draws tuples for a schema from per-attribute domains.
type TupleGen struct {
	Schema  *relation.Schema
	Domains []Domain
}

// NewTupleGen pairs a schema with its domains (one per attribute).
func NewTupleGen(schema *relation.Schema, domains ...Domain) (*TupleGen, error) {
	if len(domains) != schema.Arity() {
		return nil, fmt.Errorf("workload: schema %s needs %d domains, got %d",
			schema.Name(), schema.Arity(), len(domains))
	}
	return &TupleGen{Schema: schema, Domains: domains}, nil
}

// Draw produces one tuple.
func (g *TupleGen) Draw(rng *rand.Rand) relation.Tuple {
	t := make(relation.Tuple, len(g.Domains))
	for i, d := range g.Domains {
		t[i] = d.Draw(rng)
	}
	return t
}

// Populate fills a fresh set relation with n distinct tuples (respecting
// the schema's key: at most one tuple per key value).
func (g *TupleGen) Populate(rng *rand.Rand, n int) *relation.Relation {
	out := relation.NewSet(g.Schema)
	keyPos := g.Schema.KeyPositions()
	seenKeys := make(map[string]bool, n)
	for attempts := 0; out.Len() < n && attempts < n*20; attempts++ {
		t := g.Draw(rng)
		if len(keyPos) > 0 {
			k := t.KeyOn(keyPos)
			if seenKeys[k] {
				continue
			}
			seenKeys[k] = true
		}
		out.Insert(t)
	}
	return out
}

// Stream produces non-redundant update transactions against one relation,
// mirroring its evolving contents so deletions always target live tuples
// and insertions never duplicate keys.
type Stream struct {
	gen  *TupleGen
	rng  *rand.Rand
	live *relation.Relation
	keys map[string]bool
	// DeleteFraction is the probability that a generated operation is a
	// deletion (default 0.3 via NewStream).
	DeleteFraction float64
}

// NewStream tracks the given initial contents (cloned).
func NewStream(gen *TupleGen, seed int64, initial *relation.Relation) *Stream {
	s := &Stream{
		gen:            gen,
		rng:            rand.New(rand.NewSource(seed)),
		live:           initial.Clone(),
		keys:           make(map[string]bool),
		DeleteFraction: 0.3,
	}
	keyPos := gen.Schema.KeyPositions()
	if len(keyPos) > 0 {
		initial.Each(func(t relation.Tuple, _ int) bool {
			s.keys[t.KeyOn(keyPos)] = true
			return true
		})
	}
	return s
}

// Live returns the stream's view of the relation's current contents.
func (s *Stream) Live() *relation.Relation { return s.live }

// Transaction produces a transaction of roughly size operations (always at
// least one when the relation permits), applied to the stream's mirror so
// subsequent transactions stay non-redundant.
func (s *Stream) Transaction(size int) *delta.Delta {
	d := delta.New()
	rel := s.gen.Schema.Name()
	keyPos := s.gen.Schema.KeyPositions()
	for i := 0; i < size; i++ {
		if s.rng.Float64() < s.DeleteFraction && s.live.Len() > 0 {
			rows := s.live.Rows()
			t := rows[s.rng.Intn(len(rows))].Tuple
			if d.Rel(rel).Count(t) != 0 {
				continue // already touched in this transaction
			}
			d.Delete(rel, t)
			s.live.Delete(t)
			if len(keyPos) > 0 {
				delete(s.keys, t.KeyOn(keyPos))
			}
			continue
		}
		t := s.gen.Draw(s.rng)
		if len(keyPos) > 0 {
			k := t.KeyOn(keyPos)
			if s.keys[k] {
				continue
			}
			s.keys[k] = true
		} else if s.live.Contains(t) || d.Rel(rel).Count(t) != 0 {
			continue
		}
		d.Insert(rel, t)
		s.live.Insert(t)
	}
	return d
}

// QueryMix draws query shapes (attribute subsets) with weights; used to
// model the paper's assumption that virtual attributes are rarely
// accessed.
type QueryMix struct {
	rng     *rand.Rand
	shapes  [][]string
	weights []float64
	total   float64
}

// NewQueryMix builds a mix; shapes and weights must align.
func NewQueryMix(seed int64, shapes [][]string, weights []float64) (*QueryMix, error) {
	if len(shapes) != len(weights) || len(shapes) == 0 {
		return nil, fmt.Errorf("workload: %d shapes vs %d weights", len(shapes), len(weights))
	}
	m := &QueryMix{rng: rand.New(rand.NewSource(seed)), shapes: shapes, weights: weights}
	for _, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("workload: negative weight")
		}
		m.total += w
	}
	if m.total == 0 {
		return nil, fmt.Errorf("workload: all weights zero")
	}
	return m, nil
}

// Draw picks a query shape.
func (m *QueryMix) Draw() []string {
	x := m.rng.Float64() * m.total
	for i, w := range m.weights {
		x -= w
		if x < 0 {
			return m.shapes[i]
		}
	}
	return m.shapes[len(m.shapes)-1]
}
