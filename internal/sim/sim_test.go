package sim

import (
	"testing"

	"squirrel/internal/clock"
)

func TestEventOrdering(t *testing.T) {
	s := New()
	var order []int
	s.At(30, func() { order = append(order, 3) })
	s.At(10, func() { order = append(order, 1) })
	s.At(20, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if s.Time() != 30 {
		t.Errorf("final time = %d", s.Time())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		s.At(10, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestNowUniqueAndIncreasing(t *testing.T) {
	s := New()
	var stamps []clock.Time
	s.At(5, func() {
		stamps = append(stamps, s.Now(), s.Now(), s.Now())
	})
	s.At(6, func() { stamps = append(stamps, s.Now()) })
	s.Run()
	prev := clock.Time(-1)
	for _, ts := range stamps {
		if ts <= prev {
			t.Fatalf("timestamps not strictly increasing: %v", stamps)
		}
		prev = ts
	}
	if stamps[0] < 5 {
		t.Errorf("first stamp %d before event time", stamps[0])
	}
}

func TestAfterAndEvery(t *testing.T) {
	s := New()
	s.Horizon = 100
	count := 0
	s.Every(10, 10, func() { count++ })
	s.At(35, func() { s.After(5, func() { count += 100 }) })
	s.Run()
	// Every 10 ticks within [10,100]: 10 firings; plus the one-shot.
	if count != 110 {
		t.Fatalf("count = %d", count)
	}
}

func TestAdvanceByInterleavesEvents(t *testing.T) {
	s := New()
	var log []string
	s.At(10, func() {
		log = append(log, "outer-start")
		s.AdvanceBy(20) // "processing" until t=30; the t=15 event must run
		log = append(log, "outer-end")
	})
	s.At(15, func() { log = append(log, "interleaved") })
	s.Run()
	want := []string{"outer-start", "interleaved", "outer-end"}
	for i, w := range want {
		if i >= len(log) || log[i] != w {
			t.Fatalf("log = %v", log)
		}
	}
	if s.Time() != 30 {
		t.Errorf("time after advance = %d", s.Time())
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	ran := 0
	s.At(10, func() { ran++ })
	s.At(50, func() { ran++ })
	s.RunUntil(20)
	if ran != 1 || s.Time() != 20 {
		t.Fatalf("ran=%d time=%d", ran, s.Time())
	}
	if s.Pending() != 1 {
		t.Errorf("pending = %d", s.Pending())
	}
	s.Run()
	if ran != 2 {
		t.Errorf("final ran = %d", ran)
	}
}

func TestPastSchedulingClamps(t *testing.T) {
	s := New()
	order := []int{}
	s.At(10, func() {
		s.At(3, func() { order = append(order, 1) }) // in the past: clamps to now
		order = append(order, 0)
	})
	s.Run()
	if len(order) != 2 || order[0] != 0 || order[1] != 1 {
		t.Fatalf("order = %v", order)
	}
}
