package sim

import (
	"fmt"

	"squirrel/internal/checker"
	"squirrel/internal/clock"
	"squirrel/internal/core"
	"squirrel/internal/delta"
	"squirrel/internal/federate"
	"squirrel/internal/relation"
	"squirrel/internal/resilience"
	"squirrel/internal/source"
	"squirrel/internal/trace"
	"squirrel/internal/vdp"
)

// This file is the simulated form of DESIGN.md §11: a two-level mediator
// tree on ONE virtual clock. Leaf sources announce to middle-tier
// mediators exactly as in the flat Harness; each middle tier is wrapped
// in a federate.Exporter and consumed by the top mediator through a
// link with its own delay vocabulary, so the composed Theorem 7.2 bound
// (resilience.ComposeFreshness) is checkable against the run.

// LinkDelays is the delay vocabulary of one federation hop — the top
// mediator's view of a middle tier, mirroring a source's {ann, comm,
// q_proc} triple: announcement lag from tier commit to publication,
// one-way communication, and the exporter's answer processing time.
type LinkDelays struct {
	Ann, Comm, QProc clock.Time
}

// TierSpec declares one middle-tier mediator: its name (the source name
// the top mediator binds), its plan over leaf sources, and the link
// delays of its hop to the top.
type TierSpec struct {
	Name string
	Plan *vdp.VDP
	Link LinkDelays
}

// Tier is one constructed middle tier.
type Tier struct {
	Name string
	Plan *vdp.VDP
	Link LinkDelays
	Med  *core.Mediator
	Exp  *federate.Exporter
}

// TieredHarness wires leaf source databases, middle-tier mediators with
// export-as-source adapters, and a top mediator on a shared simulator.
// Faults are addressed by name and cover both layers: a leaf source
// name fails leaf polls and drops leaf announcements; a tier name fails
// the top's polls of that tier and drops the tier's announcements (the
// link is down — the tier itself keeps materializing, like a crashed
// leaf's database keeps committing).
type TieredHarness struct {
	Sim   *Sim
	DBs   map[string]*source.DB
	Tiers []*Tier
	Top   *core.Mediator
	// Rec is the base-coordinate trace: the driver records the top
	// mediator's queries with their BaseReflect vectors, so the §3/§7
	// checkers run against leaf commit logs (Environment).
	Rec   *trace.Recorder
	Plan  *vdp.VDP // the top mediator's plan (tier coordinates)
	Delay Delays   // leaf-side delays, shared by every tier

	// OnTxnError, if non-nil, receives periodic update-loop errors
	// instead of panicking.
	OnTxnError func(error)

	busy   bool
	faults map[string]*SourceFault
}

// Fault returns the mutable fault state for a leaf source or tier name
// (created on demand).
func (h *TieredHarness) Fault(name string) *SourceFault {
	f, ok := h.faults[name]
	if !ok {
		f = &SourceFault{}
		h.faults[name] = f
	}
	return f
}

// leafTierConn is delayedConn's tiered twin: the path between one
// middle-tier mediator and one leaf source, with the shared per-source
// delays and fault state.
type leafTierConn struct {
	h    *TieredHarness
	tier *Tier
	db   *source.DB
	src  string
}

func (c leafTierConn) Name() string { return c.src }

func (c leafTierConn) QueryMulti(specs []source.QuerySpec) ([]*relation.Relation, clock.Time, error) {
	d := c.h.Delay
	c.h.Sim.AdvanceBy(d.Comm[c.src]) // request travels
	if f := c.h.faults[c.src]; f != nil {
		if f.HangTicks > 0 {
			c.h.Sim.AdvanceBy(f.HangTicks)
			return nil, 0, fmt.Errorf("sim: source %s hung (gave up after %d ticks)", c.src, f.HangTicks)
		}
		if f.Down {
			return nil, 0, fmt.Errorf("sim: source %s is down", c.src)
		}
	}
	var answers []*relation.Relation
	var asOf clock.Time
	var err error
	if c.tier.Med != nil && c.tier.Med.Contributor(c.src) != core.VirtualContributor {
		cutoff := c.db.LastCommitAtOrBefore(c.h.Sim.Time() - d.Ann[c.src])
		answers, asOf, err = c.db.QueryMultiAt(specs, cutoff)
	} else {
		answers, asOf, err = c.db.QueryMulti(specs)
	}
	c.h.Sim.AdvanceBy(d.QProcSource[c.src] + d.Comm[c.src]) // processing + answer travels
	return answers, asOf, err
}

// tierConn is the top mediator's path to one middle tier: link delays
// plus the tier's fault state, answering from the federate.Exporter.
// It implements core.TieredConn so the top mediator's answers carry
// base-source coordinates.
type tierConn struct {
	h    *TieredHarness
	tier *Tier
}

func (c tierConn) Name() string { return c.tier.Name }

func (c tierConn) QueryMulti(specs []source.QuerySpec) ([]*relation.Relation, clock.Time, error) {
	out, asOf, _, err := c.QueryMultiBase(specs)
	return out, asOf, err
}

func (c tierConn) QueryMultiBase(specs []source.QuerySpec) ([]*relation.Relation, clock.Time, clock.Vector, error) {
	d := c.tier.Link
	c.h.Sim.AdvanceBy(d.Comm) // request travels
	if f := c.h.faults[c.tier.Name]; f != nil {
		if f.HangTicks > 0 {
			c.h.Sim.AdvanceBy(f.HangTicks)
			return nil, 0, nil, fmt.Errorf("sim: tier %s hung (gave up after %d ticks)", c.tier.Name, f.HangTicks)
		}
		if f.Down {
			return nil, 0, nil, fmt.Errorf("sim: tier %s is down", c.tier.Name)
		}
	}
	answers, asOf, base, err := c.tier.Exp.QueryMultiBase(specs)
	c.h.Sim.AdvanceBy(d.QProc + d.Comm) // processing + answer travels
	return answers, asOf, base, err
}

// NewTieredHarness builds the simulated federation: one source DB per
// leaf source (shared between tiers that read it) loaded with the given
// initial relations, one mediator plus export-as-source adapter per
// TierSpec, and a top mediator with plan top whose sources are the tier
// names. Announcements flow leaf→tier with the per-source delays and
// tier→top with each tier's link delays; a periodic update loop with
// period UHold drains every tier and then the top.
func NewTieredHarness(tiers []TierSpec, top *vdp.VDP, initial map[string]map[string]*relation.Relation, d Delays) (*TieredHarness, error) {
	s := New()
	h := &TieredHarness{Sim: s, DBs: map[string]*source.DB{}, Rec: trace.NewRecorder(),
		Plan: top, Delay: d, faults: map[string]*SourceFault{}}

	// Leaf databases, shared across tiers; each relation loaded once.
	consumers := map[string][]*Tier{} // leaf source -> tiers reading it
	for _, ts := range tiers {
		t := &Tier{Name: ts.Name, Plan: ts.Plan, Link: ts.Link}
		h.Tiers = append(h.Tiers, t)
		for _, src := range ts.Plan.Sources() {
			if _, ok := h.DBs[src]; !ok {
				db := source.NewDB(src, s)
				for _, rel := range initialOrEmpty(ts.Plan, src, initial) {
					if err := db.LoadRelation(rel); err != nil {
						return nil, err
					}
				}
				h.DBs[src] = db
			}
			consumers[src] = append(consumers[src], t)
		}
	}

	// Middle-tier mediators over the leaf connections.
	for _, t := range h.Tiers {
		conns := map[string]core.SourceConn{}
		for _, src := range t.Plan.Sources() {
			conns[src] = leafTierConn{h: h, tier: t, db: h.DBs[src], src: src}
		}
		med, err := core.New(core.Config{VDP: t.Plan, Sources: conns, Clock: s})
		if err != nil {
			return nil, fmt.Errorf("tier %s: %w", t.Name, err)
		}
		t.Med = med
	}

	// Leaf announcement fan-out: one subscription per leaf checks the
	// fault once (a dropped announcement is dropped for every consumer)
	// and delivers to each consuming tier after the source's delay.
	for src, db := range h.DBs {
		src, ts := src, consumers[src]
		db.Subscribe(func(a source.Announcement) {
			if f := h.faults[src]; f != nil {
				if f.Down {
					f.DroppedAnns++
					return
				}
				if f.DropNextAnns > 0 {
					f.DropNextAnns--
					f.DroppedAnns++
					return
				}
			}
			delay := d.Ann[src] + d.Comm[src]
			for _, t := range ts {
				med := t.Med
				s.After(delay, func() { med.OnAnnouncement(a) })
			}
		})
	}
	for _, t := range h.Tiers {
		if err := t.Med.Initialize(); err != nil {
			return nil, fmt.Errorf("tier %s: %w", t.Name, err)
		}
		exp, err := federate.New(t.Med, t.Name)
		if err != nil {
			return nil, fmt.Errorf("tier %s: %w", t.Name, err)
		}
		t.Exp = exp
	}

	// The top mediator consumes the tiers through their links.
	conns := map[string]core.SourceConn{}
	for _, t := range h.Tiers {
		conns[t.Name] = tierConn{h: h, tier: t}
	}
	med, err := core.New(core.Config{VDP: top, Sources: conns, Clock: s})
	if err != nil {
		return nil, err
	}
	h.Top = med
	for _, t := range h.Tiers {
		t := t
		t.Exp.Subscribe(func(a source.Announcement) {
			if f := h.faults[t.Name]; f != nil {
				if f.Down {
					f.DroppedAnns++
					return
				}
				if f.DropNextAnns > 0 {
					f.DropNextAnns--
					f.DroppedAnns++
					return
				}
			}
			delay := t.Link.Ann + t.Link.Comm
			s.After(delay, func() { med.OnAnnouncement(a) })
		})
	}
	if err := med.Initialize(); err != nil {
		return nil, err
	}

	// Periodic update transactions (the u_hold policy), draining the
	// tiers bottom-up so a leaf commit can cross both hops in one period.
	if d.UHold > 0 {
		s.Every(d.UHold, d.UHold, func() {
			h.withTransaction(func() {
				if err := h.FlushAll(); err != nil {
					if h.OnTxnError != nil {
						h.OnTxnError(err)
						return
					}
					panic(fmt.Sprintf("sim: update transaction: %v", err))
				}
			})
		})
	}
	return h, nil
}

// FlushAll runs one update transaction on every tier (in declaration
// order) and then on the top mediator, modeling UProc before each.
// Callers outside the periodic loop must wrap it in Exclusive.
func (h *TieredHarness) FlushAll() error {
	for _, t := range h.Tiers {
		h.Sim.AdvanceBy(h.Delay.UProc)
		if _, err := t.Med.RunUpdateTransaction(); err != nil {
			return fmt.Errorf("tier %s: %w", t.Name, err)
		}
	}
	h.Sim.AdvanceBy(h.Delay.UProc)
	if _, err := h.Top.RunUpdateTransaction(); err != nil {
		return fmt.Errorf("top: %w", err)
	}
	return nil
}

// withTransaction serializes mediator transactions exactly like
// Harness.withTransaction: work landing mid-transaction is deferred a
// tick at a time.
func (h *TieredHarness) withTransaction(fn func()) {
	if h.busy {
		h.Sim.After(1, func() { h.withTransaction(fn) })
		return
	}
	h.busy = true
	fn()
	h.busy = false
}

// Exclusive runs fn as a serialized transaction at the current virtual
// time (see Harness.Exclusive).
func (h *TieredHarness) Exclusive(fn func()) { h.withTransaction(fn) }

// ScheduleCommit schedules a leaf-source transaction at virtual time t
// (see Harness.ScheduleCommit).
func (h *TieredHarness) ScheduleCommit(t clock.Time, src string, build func() *delta.Delta) {
	h.Sim.At(t, func() {
		d := build()
		if d == nil || d.IsEmpty() {
			return
		}
		if _, err := h.DBs[src].Apply(d); err != nil {
			panic(fmt.Sprintf("sim: commit to %s: %v", src, err))
		}
	})
}

// TierNames lists the tiers in declaration order.
func (h *TieredHarness) TierNames() []string {
	out := make([]string, len(h.Tiers))
	for i, t := range h.Tiers {
		out[i] = t.Name
	}
	return out
}

// ComposedBounds computes the federation's Theorem 7.2 bound in
// base-source coordinates: the top mediator's bound over its tier
// sources (each hop's LinkDelays standing in for the source delay
// triple) composed with every tier's own bound over the leaves
// (resilience.ComposeFreshness).
func (h *TieredHarness) ComposedBounds() clock.Vector {
	top := Delays{
		Ann: map[string]clock.Time{}, Comm: map[string]clock.Time{}, QProcSource: map[string]clock.Time{},
		UHold: h.Delay.UHold, UProc: h.Delay.UProc, QProcMed: h.Delay.QProcMed,
	}
	lower := map[string]clock.Vector{}
	for _, t := range h.Tiers {
		top.Ann[t.Name], top.Comm[t.Name], top.QProcSource[t.Name] = t.Link.Ann, t.Link.Comm, t.Link.QProc
		lower[t.Name] = h.Delay.Bounds(t.Med, t.Plan.Sources())
	}
	return resilience.ComposeFreshness(top.Bounds(h.Top, h.TierNames()), lower)
}

// Environment exposes the run for the correctness checkers in
// base-source coordinates: flat is the composed single-mediator plan
// (tier views and top views over the leaf sources), and Rec must hold
// the top mediator's queries recorded with their BaseReflect vectors.
func (h *TieredHarness) Environment(flat *vdp.VDP) checker.Environment {
	return checker.Environment{VDP: flat, Sources: h.DBs, Trace: h.Rec}
}
