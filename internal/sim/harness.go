package sim

import (
	"fmt"

	"squirrel/internal/checker"
	"squirrel/internal/clock"
	"squirrel/internal/core"
	"squirrel/internal/delta"
	"squirrel/internal/relation"
	"squirrel/internal/source"
	"squirrel/internal/trace"
	"squirrel/internal/vdp"
)

// Delays parameterizes the integration environment with the delay
// vocabulary of Theorem 7.2 (all in virtual ticks).
type Delays struct {
	// Ann is the per-source announcement delay (ann_delay_i): the lag
	// between a commit and its publication. Sources also answer mediator
	// queries from their published snapshot, preserving the in-order
	// message assumption of §4.
	Ann map[string]clock.Time
	// Comm is the per-source one-way communication delay (comm_delay_i).
	Comm map[string]clock.Time
	// QProcSource is the per-source query processing delay (q_proc_delay_i).
	QProcSource map[string]clock.Time
	// UHold is the mediator's queue-flush period (u_hold_delay_med).
	UHold clock.Time
	// UProc is the update-transaction processing time excluding source
	// queries (u_proc_delay_med).
	UProc clock.Time
	// QProcMed is the mediator-side query processing time (q_proc_delay_med).
	QProcMed clock.Time
}

// Bounds computes the freshness vector f̄ of Theorem 7.2 for the given
// environment. For an announcing (materialized/hybrid-contributor) source
// DB_i, data can age by the announcement and transfer lag, wait out a full
// hold period, and survive through two transaction processing windows
// (the one that misses it plus the one that incorporates it, including
// any polling round trips); a query then adds its own processing time:
//
//	f_i = ann_i + comm_i + 2·(u_hold + u_proc + Σ_k(2·comm_k + q_proc_k))
//	      + q_proc_med + Σ_k(2·comm_k + q_proc_k)
//
// For a virtual contributor DB_j the answer is at most one query round
// trip old: f_j = Σ_k(q_proc_k + 2·comm_k) + q_proc_med.
func (d Delays) Bounds(med *core.Mediator, sources []string) clock.Vector {
	pollRTT := clock.Time(0)
	for _, k := range sources {
		pollRTT += 2*d.Comm[k] + d.QProcSource[k]
	}
	out := make(clock.Vector, len(sources))
	for _, s := range sources {
		if med.Contributor(s) == core.VirtualContributor {
			out[s] = pollRTT + d.QProcMed
			continue
		}
		out[s] = d.Ann[s] + d.Comm[s] + 2*(d.UHold+d.UProc+pollRTT) + d.QProcMed + pollRTT
	}
	return out
}

// SourceFault is the controllable failure state of one simulated source
// link (scenario steps flip these; the zero value is a healthy link).
type SourceFault struct {
	// Down fails every poll after the request's one-way trip, and drops
	// announcements (the crashed source's feed is gone with it).
	Down bool
	// HangTicks, if > 0, models a hung source: a poll burns the hang
	// window in virtual time before failing (a timeout, not a fast error).
	HangTicks clock.Time
	// DropNextAnns silently discards the next n announcements (a lossy
	// feed: the mediator sees a sequence gap when delivery resumes).
	DropNextAnns int
	// DroppedAnns counts announcements discarded by Down or DropNextAnns.
	DroppedAnns int
}

// Harness wires source databases, the delay model, and a mediator on a
// shared simulator.
type Harness struct {
	Sim   *Sim
	DBs   map[string]*source.DB
	Med   *core.Mediator
	Rec   *trace.Recorder
	Plan  *vdp.VDP
	Delay Delays

	// OnTxnError, if non-nil, receives errors from the periodic update
	// loop instead of panicking — a scenario deliberately crashing a
	// source expects its polls to fail.
	OnTxnError func(error)

	busy   bool // a mediator transaction is in progress (serial execution)
	faults map[string]*SourceFault
}

// Fault returns the mutable fault state for src (created on demand).
func (h *Harness) Fault(src string) *SourceFault {
	f, ok := h.faults[src]
	if !ok {
		f = &SourceFault{}
		h.faults[src] = f
	}
	return f
}

// delayedConn models the network path between the mediator and one
// source: requests and answers each take Comm ticks, the source takes
// QProcSource ticks to answer, and announcing sources answer from their
// published snapshot (commits older than Ann), preserving FIFO ordering
// between announcements and answers.
type delayedConn struct {
	h   *Harness
	db  *source.DB
	src string
}

func (c delayedConn) Name() string { return c.src }

func (c delayedConn) QueryMulti(specs []source.QuerySpec) ([]*relation.Relation, clock.Time, error) {
	d := c.h.Delay
	c.h.Sim.AdvanceBy(d.Comm[c.src]) // request travels
	if f := c.h.faults[c.src]; f != nil {
		if f.HangTicks > 0 {
			c.h.Sim.AdvanceBy(f.HangTicks)
			return nil, 0, fmt.Errorf("sim: source %s hung (gave up after %d ticks)", c.src, f.HangTicks)
		}
		if f.Down {
			return nil, 0, fmt.Errorf("sim: source %s is down", c.src)
		}
	}
	var answers []*relation.Relation
	var asOf clock.Time
	var err error
	if c.h.Med != nil && c.h.Med.Contributor(c.src) != core.VirtualContributor {
		// Published snapshot: the latest commit whose announcement has
		// been sent by the time the request arrives.
		cutoff := c.db.LastCommitAtOrBefore(c.h.Sim.Time() - d.Ann[c.src])
		answers, asOf, err = c.db.QueryMultiAt(specs, cutoff)
	} else {
		answers, asOf, err = c.db.QueryMulti(specs)
	}
	c.h.Sim.AdvanceBy(d.QProcSource[c.src] + d.Comm[c.src]) // processing + answer travels
	return answers, asOf, err
}

// NewHarness builds the simulated integration environment: one source DB
// per VDP source loaded with the given initial relations, a mediator with
// the given plan, announcement feeds with the configured delays, and a
// periodic update-transaction loop with period UHold.
func NewHarness(plan *vdp.VDP, initial map[string]map[string]*relation.Relation, d Delays) (*Harness, error) {
	s := New()
	h := &Harness{Sim: s, DBs: map[string]*source.DB{}, Rec: trace.NewRecorder(), Plan: plan, Delay: d,
		faults: map[string]*SourceFault{}}
	conns := map[string]core.SourceConn{}
	for _, src := range plan.Sources() {
		db := source.NewDB(src, s)
		for _, rel := range initialOrEmpty(plan, src, initial) {
			if err := db.LoadRelation(rel); err != nil {
				return nil, err
			}
		}
		h.DBs[src] = db
		conns[src] = delayedConn{h: h, db: db, src: src}
	}
	med, err := core.New(core.Config{VDP: plan, Sources: conns, Clock: s, Recorder: h.Rec})
	if err != nil {
		return nil, err
	}
	h.Med = med
	for src, db := range h.DBs {
		src := src
		db.Subscribe(func(a source.Announcement) {
			if f := h.faults[src]; f != nil {
				if f.Down {
					f.DroppedAnns++
					return
				}
				if f.DropNextAnns > 0 {
					f.DropNextAnns--
					f.DroppedAnns++
					return
				}
			}
			delay := d.Ann[src] + d.Comm[src]
			s.After(delay, func() { med.OnAnnouncement(a) })
		})
	}
	if err := med.Initialize(); err != nil {
		return nil, err
	}
	// Periodic update transactions (the u_hold policy).
	if d.UHold > 0 {
		s.Every(d.UHold, d.UHold, func() {
			h.withTransaction(func() {
				s.AdvanceBy(d.UProc)
				if _, err := med.RunUpdateTransaction(); err != nil {
					if h.OnTxnError != nil {
						h.OnTxnError(err)
						return
					}
					panic(fmt.Sprintf("sim: update transaction: %v", err))
				}
			})
		})
	}
	return h, nil
}

func initialOrEmpty(plan *vdp.VDP, src string, initial map[string]map[string]*relation.Relation) []*relation.Relation {
	var out []*relation.Relation
	for _, leaf := range plan.LeavesOf(src) {
		if m := initial[src]; m != nil {
			if r, ok := m[leaf]; ok {
				out = append(out, r)
				continue
			}
		}
		out = append(out, relation.NewSet(plan.Node(leaf).Schema))
	}
	return out
}

// withTransaction runs fn unless a mediator transaction is already in
// progress (transactions are serial; an event landing mid-transaction is
// deferred by a tick).
func (h *Harness) withTransaction(fn func()) {
	if h.busy {
		h.Sim.After(1, func() { h.withTransaction(fn) })
		return
	}
	h.busy = true
	fn()
	h.busy = false
}

// Exclusive runs fn as a serialized mediator transaction at the current
// virtual time: periodic update transactions falling due while fn
// advances the clock are deferred (by a tick at a time) until fn
// returns, exactly as withTransaction serializes scheduled work. The
// scenario runner drives queries, manual flushes, and re-annotations
// through this.
func (h *Harness) Exclusive(fn func()) { h.withTransaction(fn) }

// ScheduleCommit schedules a source transaction at virtual time t. The
// build callback runs at commit time (so it can consult current state);
// returning nil skips the commit.
func (h *Harness) ScheduleCommit(t clock.Time, src string, build func() *delta.Delta) {
	h.Sim.At(t, func() {
		d := build()
		if d == nil || d.IsEmpty() {
			return
		}
		if _, err := h.DBs[src].Apply(d); err != nil {
			panic(fmt.Sprintf("sim: commit to %s: %v", src, err))
		}
	})
}

// ScheduleQuery schedules a mediator query at virtual time t; the answer
// lands in the trace. The mediator-side processing delay is modeled
// before the query transaction commits.
func (h *Harness) ScheduleQuery(t clock.Time, export string, attrs []string) {
	h.Sim.At(t, func() {
		h.withTransaction(func() {
			h.Sim.AdvanceBy(h.Delay.QProcMed)
			if _, err := h.Med.QueryOpts(export, attrs, nil, core.QueryOptions{}); err != nil {
				panic(fmt.Sprintf("sim: query: %v", err))
			}
		})
	})
}

// Environment exposes the run for the correctness checkers.
func (h *Harness) Environment() checker.Environment {
	return checker.Environment{VDP: h.Plan, Sources: h.DBs, Trace: h.Rec}
}
