package sim

import (
	"testing"

	"squirrel/internal/clock"
	"squirrel/internal/core"
	"squirrel/internal/delta"
	"squirrel/internal/relation"
	"squirrel/internal/trace"
	"squirrel/internal/vdp"
)

// buildFederation constructs the canonical two-tier environment: medA
// serves VR over db1.R, medB serves VS over db2.S, the top joins the
// two exports, and the flat plan is the same views composed in one
// mediator for the checkers.
func buildFederation(t *testing.T, d Delays) (*TieredHarness, *vdp.VDP) {
	t.Helper()
	rSchema := relation.MustSchema("R", []relation.Attribute{
		{Name: "r1", Type: relation.KindInt}, {Name: "r2", Type: relation.KindInt}}, "r1")
	sSchema := relation.MustSchema("S", []relation.Attribute{
		{Name: "s1", Type: relation.KindInt}, {Name: "s2", Type: relation.KindInt}}, "s1")

	ba := vdp.NewBuilder()
	if err := ba.AddSource("db1", rSchema); err != nil {
		t.Fatal(err)
	}
	if err := ba.AddViewSQL("VR", `SELECT r1, r2 FROM R`); err != nil {
		t.Fatal(err)
	}
	planA, err := ba.Build()
	if err != nil {
		t.Fatal(err)
	}
	bb := vdp.NewBuilder()
	if err := bb.AddSource("db2", sSchema); err != nil {
		t.Fatal(err)
	}
	if err := bb.AddViewSQL("VS", `SELECT s1, s2 FROM S`); err != nil {
		t.Fatal(err)
	}
	planB, err := bb.Build()
	if err != nil {
		t.Fatal(err)
	}

	bt := vdp.NewBuilder()
	if err := bt.AddSource("meda", planA.Node("VR").Schema); err != nil {
		t.Fatal(err)
	}
	if err := bt.AddSource("medb", planB.Node("VS").Schema); err != nil {
		t.Fatal(err)
	}
	if err := bt.AddViewSQL("T", `SELECT r1, s2 FROM VR JOIN VS ON r2 = s1`); err != nil {
		t.Fatal(err)
	}
	top, err := bt.Build()
	if err != nil {
		t.Fatal(err)
	}

	bf := vdp.NewBuilder()
	if err := bf.AddSource("db1", rSchema); err != nil {
		t.Fatal(err)
	}
	if err := bf.AddSource("db2", sSchema); err != nil {
		t.Fatal(err)
	}
	for _, v := range []struct{ name, sql string }{
		{"VR", `SELECT r1, r2 FROM R`},
		{"VS", `SELECT s1, s2 FROM S`},
		{"T", `SELECT r1, s2 FROM VR JOIN VS ON r2 = s1`},
	} {
		if err := bf.AddViewSQL(v.name, v.sql); err != nil {
			t.Fatal(err)
		}
	}
	flat, err := bf.Build()
	if err != nil {
		t.Fatal(err)
	}

	r0 := relation.NewSet(rSchema)
	r0.Insert(relation.T(1, 5))
	s0 := relation.NewSet(sSchema)
	s0.Insert(relation.T(5, 100))
	link := LinkDelays{Ann: 1, Comm: 1, QProc: 1}
	h, err := NewTieredHarness([]TierSpec{
		{Name: "meda", Plan: planA, Link: link},
		{Name: "medb", Plan: planB, Link: link},
	}, top, map[string]map[string]*relation.Relation{
		"db1": {"R": r0}, "db2": {"S": s0},
	}, d)
	if err != nil {
		t.Fatal(err)
	}
	return h, flat
}

// queryTop runs one top-mediator query transaction on T and records it
// in base coordinates.
func queryTop(t *testing.T, h *TieredHarness) *relation.Relation {
	t.Helper()
	var answer *relation.Relation
	h.Exclusive(func() {
		h.Sim.AdvanceBy(h.Delay.QProcMed)
		res, err := h.Top.QueryOpts("T", nil, nil, core.QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		h.Rec.RecordQuery(trace.QueryTxn{
			Committed: res.Committed, Reflect: res.BaseReflect,
			Export: "T", Answer: res.Answer,
		})
		answer = res.Answer
	})
	return answer
}

// TestTieredHarnessPropagatesAndChecks drives leaf commits through both
// hops and verifies the §3 consistency checker and the composed
// Theorem 7.2 bound hold on the base-coordinate trace.
func TestTieredHarnessPropagatesAndChecks(t *testing.T) {
	d := Delays{
		Ann:         map[string]clock.Time{"db1": 1, "db2": 1},
		Comm:        map[string]clock.Time{"db1": 1, "db2": 1},
		QProcSource: map[string]clock.Time{"db1": 1, "db2": 1},
		UProc:       1, QProcMed: 1,
	}
	h, flat := buildFederation(t, d)

	if got := queryTop(t, h); got.Len() != 1 {
		t.Fatalf("initial T has %d rows, want 1:\n%s", got.Len(), got)
	}

	for i := int64(0); i < 4; i++ {
		dl := delta.New()
		dl.Insert("R", relation.T(10+i, 200+i))
		if _, err := h.DBs["db1"].Apply(dl); err != nil {
			t.Fatal(err)
		}
		ds := delta.New()
		ds.Insert("S", relation.T(200+i, 1000+i))
		if _, err := h.DBs["db2"].Apply(ds); err != nil {
			t.Fatal(err)
		}
		h.Sim.AdvanceBy(4) // deliver leaf announcements
		h.Exclusive(func() {
			if err := h.FlushAll(); err != nil {
				t.Fatal(err)
			}
		})
		h.Sim.AdvanceBy(4) // deliver tier announcements
		h.Exclusive(func() {
			if err := h.FlushAll(); err != nil {
				t.Fatal(err)
			}
		})
		if got := queryTop(t, h); got.Len() != int(i)+2 {
			t.Fatalf("round %d: T has %d rows, want %d:\n%s", i, got.Len(), i+2, got)
		}
	}

	env := h.Environment(flat)
	if err := env.CheckConsistency(); err != nil {
		t.Fatalf("composed consistency: %v", err)
	}
	bounds := h.ComposedBounds()
	for _, src := range []string{"db1", "db2"} {
		if bounds[src] == 0 {
			t.Fatalf("composed bound for %s is zero: %v", src, bounds)
		}
	}
	if _, err := env.CheckFreshness(bounds); err != nil {
		t.Fatalf("composed theorem 7.2: %v", err)
	}
}

// TestTieredHarnessTierCrashQuarantines kills the medA link mid-stream:
// announcements are dropped, the next delivered announcement exposes
// the sequence gap, the top quarantines the tier, and a resync heals it.
func TestTieredHarnessTierCrashQuarantines(t *testing.T) {
	d := Delays{
		Ann:         map[string]clock.Time{"db1": 1, "db2": 1},
		Comm:        map[string]clock.Time{"db1": 1, "db2": 1},
		QProcSource: map[string]clock.Time{"db1": 1, "db2": 1},
		UProc:       1, QProcMed: 1,
	}
	h, _ := buildFederation(t, d)

	commit := func(r1, r2 int64) {
		dl := delta.New()
		dl.Insert("R", relation.T(r1, r2))
		if _, err := h.DBs["db1"].Apply(dl); err != nil {
			t.Fatal(err)
		}
		h.Sim.AdvanceBy(4)
		h.Exclusive(func() {
			if err := h.FlushAll(); err != nil {
				t.Fatal(err)
			}
		})
		h.Sim.AdvanceBy(4)
	}

	commit(19, 5) // healthy round: the top learns medA's sequence baseline
	h.Fault("meda").Down = true
	commit(20, 5) // medA commits; its announcement to the top is dropped
	if got := h.Fault("meda").DroppedAnns; got == 0 {
		t.Fatal("tier announcement was not dropped while down")
	}
	h.Fault("meda").Down = false
	commit(21, 5) // the next announcement exposes the gap
	h.Exclusive(func() {
		if _, err := h.Top.RunUpdateTransaction(); err != nil {
			t.Fatal(err)
		}
	})
	quarantined := h.Top.QuarantinedSources()
	if len(quarantined) != 1 || quarantined[0] != "meda" {
		t.Fatalf("quarantined = %v, want [meda]", quarantined)
	}
	var err error
	h.Exclusive(func() { err = h.Top.ResyncSource("meda") })
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Top.QuarantinedSources()) != 0 {
		t.Fatalf("quarantine survived resync: %v", h.Top.QuarantinedSources())
	}
	if got := queryTop(t, h); got.Len() != 4 {
		t.Fatalf("post-resync T has %d rows, want 4:\n%s", got.Len(), got)
	}
}
