package sim

import (
	"testing"
)

// TestDroppedCountsHorizonLosses: events scheduled past the horizon are
// silently discarded by step(), but At must count them so harnesses can
// fail loudly instead of truncating timelines (the scenario runner
// checks Dropped() at end of run).
func TestDroppedCountsHorizonLosses(t *testing.T) {
	s := New()
	s.Horizon = 100
	ran := 0
	s.At(50, func() { ran++ })
	s.At(150, func() { ran++ })   // dropped
	s.At(101, func() { ran++ })   // dropped
	s.At(100, func() { ran++ })   // exactly at horizon: kept
	s.After(60, func() { ran++ }) // t=60: kept
	s.Run()
	if ran != 3 {
		t.Errorf("ran = %d, want 3", ran)
	}
	if got := s.Dropped(); got != 2 {
		t.Errorf("Dropped() = %d, want 2", got)
	}
}

// TestEveryChainNotCountedAsDrop: a periodic chain ending at the horizon
// is normal termination, not data loss — it must not inflate Dropped().
func TestEveryChainNotCountedAsDrop(t *testing.T) {
	s := New()
	s.Horizon = 95
	count := 0
	s.Every(10, 10, func() { count++ })
	s.Run()
	if count != 9 { // 10,20,...,90
		t.Errorf("count = %d, want 9", count)
	}
	if got := s.Dropped(); got != 0 {
		t.Errorf("Dropped() = %d, want 0 (periodic rollover is not a drop)", got)
	}
}

// TestDroppedFromWithinCallback: drops are counted even when the
// too-late event is scheduled from inside a running event.
func TestDroppedFromWithinCallback(t *testing.T) {
	s := New()
	s.Horizon = 50
	s.At(40, func() {
		s.After(100, func() { t.Error("ran past horizon") })
	})
	s.Run()
	if got := s.Dropped(); got != 1 {
		t.Errorf("Dropped() = %d, want 1", got)
	}
}

// TestSameTickSeqAcrossOrigins: events landing on the same tick fire in
// scheduling (seq) order regardless of whether they came from At, After,
// or were scheduled from inside another callback.
func TestSameTickSeqAcrossOrigins(t *testing.T) {
	s := New()
	var order []int
	s.At(20, func() { order = append(order, 0) })
	s.At(10, func() {
		// Scheduled later than both below, so it must fire after them
		// even though it is registered "from within" the timeline.
		s.After(10, func() { order = append(order, 3) })
	})
	s.After(20, func() { order = append(order, 1) })
	s.At(20, func() { order = append(order, 2) })
	s.Run()
	want := []int{0, 1, 2, 3}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i, w := range want {
		if order[i] != w {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// TestAdvanceByNested: AdvanceBy from inside an event that itself ran
// from an outer AdvanceBy. The inner advance must drain due events and
// return control to the outer frame with time fully advanced.
func TestAdvanceByNested(t *testing.T) {
	s := New()
	var log []string
	s.At(10, func() {
		log = append(log, "outer-start")
		s.AdvanceBy(30) // to t=40; runs the t=20 event below
		log = append(log, "outer-end")
	})
	s.At(20, func() {
		log = append(log, "inner-start")
		s.AdvanceBy(5) // to t=25; runs the t=22 event below
		log = append(log, "inner-end")
	})
	s.At(22, func() { log = append(log, "leaf") })
	s.Run()
	want := []string{"outer-start", "inner-start", "leaf", "inner-end", "outer-end"}
	if len(log) != len(want) {
		t.Fatalf("log = %v", log)
	}
	for i, w := range want {
		if log[i] != w {
			t.Fatalf("log = %v, want %v", log, want)
		}
	}
	if s.Time() != 40 {
		t.Errorf("final time = %d, want 40", s.Time())
	}
}

// TestAdvanceByZero is a no-op in time but still a valid call from
// within a callback.
func TestAdvanceByZero(t *testing.T) {
	s := New()
	ran := false
	s.At(10, func() {
		s.AdvanceBy(0)
		ran = true
	})
	s.Run()
	if !ran || s.Time() != 10 {
		t.Errorf("ran=%v time=%d", ran, s.Time())
	}
}

// TestNowAcrossAdvanceBy: timestamps issued before an AdvanceBy, by
// events due during it, and after it must form one strictly increasing
// sequence — Now never replays an instant consumed inside the advance.
func TestNowAcrossAdvanceBy(t *testing.T) {
	s := New()
	var stamps []int64
	grab := func() { stamps = append(stamps, int64(s.Now())) }
	s.At(10, func() {
		grab()
		s.AdvanceBy(20)
		grab()
	})
	s.At(15, grab)
	s.At(25, grab)
	s.Run()
	for i := 1; i < len(stamps); i++ {
		if stamps[i] <= stamps[i-1] {
			t.Fatalf("stamps not strictly increasing: %v", stamps)
		}
	}
	if len(stamps) != 4 {
		t.Fatalf("stamps = %v, want 4 entries", stamps)
	}
}
