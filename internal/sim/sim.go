// Package sim provides a deterministic discrete-event simulator used to
// reproduce the timing-dependent results of the paper: the freshness
// bounds of Theorem 7.2 and the qualitative latency/staleness trade-offs
// of §1. The simulator's virtual clock implements clock.Clock, so source
// databases, mediators, and the trace checkers all run unmodified on
// virtual time.
//
// The simulator is single-threaded and models concurrency by
// interleaving: synchronous operations that "take time" (network hops,
// processing) call AdvanceBy, which runs any events that become due —
// e.g. a source commit landing in the middle of a mediator poll.
package sim

import (
	"container/heap"

	"squirrel/internal/clock"
)

// event is a scheduled callback.
type event struct {
	at  clock.Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Sim is a discrete-event scheduler with a strictly increasing virtual
// clock. The zero value is NOT ready; use New.
type Sim struct {
	now     clock.Time
	issued  clock.Time // last timestamp handed out by Now
	seq     uint64
	pq      eventHeap
	dropped int
	// Horizon, if > 0, drops events scheduled beyond it (simulation end).
	Horizon clock.Time
}

// New creates a simulator starting at virtual time 0.
func New() *Sim { return &Sim{} }

// Now implements clock.Clock: it returns a unique, strictly increasing
// timestamp at (or just after) the current virtual time. Repeated calls
// within one event advance by one tick each, modeling the paper's
// assumption that no two events share an instant.
func (s *Sim) Now() clock.Time {
	t := s.now
	if t <= s.issued {
		t = s.issued + 1
	}
	s.issued = t
	return t
}

// Time returns the current virtual time without consuming a timestamp.
func (s *Sim) Time() clock.Time { return s.now }

// At schedules fn at absolute virtual time t (clamped to now). An event
// past the horizon is dropped AND counted (see Dropped): a workload step
// that silently vanishes would make every downstream assertion pass
// vacuously, so harnesses must be able to detect truncation.
func (s *Sim) At(t clock.Time, fn func()) {
	if t < s.now {
		t = s.now
	}
	if s.Horizon > 0 && t > s.Horizon {
		s.dropped++
		return
	}
	s.seq++
	heap.Push(&s.pq, &event{at: t, seq: s.seq, fn: fn})
}

// atUncounted is At for self-rescheduling periodic chains: a chain that
// runs off the horizon's edge ended by design, not by truncation, so the
// dropped tick is not counted.
func (s *Sim) atUncounted(t clock.Time, fn func()) {
	if t < s.now {
		t = s.now
	}
	if s.Horizon > 0 && t > s.Horizon {
		return
	}
	s.seq++
	heap.Push(&s.pq, &event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn d ticks from the current time.
func (s *Sim) After(d clock.Time, fn func()) { s.At(s.now+d, fn) }

// Every schedules fn at period intervals starting at start, until the
// horizon (or forever if no horizon — use RunUntil then). The periodic
// chain ending at the horizon is normal termination and does not count
// as a dropped event.
func (s *Sim) Every(start, period clock.Time, fn func()) {
	var tick func()
	next := start
	tick = func() {
		fn()
		next += period
		s.atUncounted(next, tick)
	}
	s.atUncounted(next, tick)
}

// Dropped reports how many one-shot events were discarded because they
// were scheduled past the horizon. A deterministic harness should fail
// loudly when this is non-zero at the end of a run: a truncated timeline
// proves nothing about the steps that never executed.
func (s *Sim) Dropped() int { return s.dropped }

// step runs the earliest event; reports false when none remain.
func (s *Sim) step() bool {
	if len(s.pq) == 0 {
		return false
	}
	e := heap.Pop(&s.pq).(*event)
	if e.at > s.now {
		s.now = e.at
	}
	e.fn()
	return true
}

// Run executes events until none remain.
func (s *Sim) Run() {
	for s.step() {
	}
}

// RunUntil executes events with time ≤ t, then advances the clock to t.
func (s *Sim) RunUntil(t clock.Time) {
	for len(s.pq) > 0 && s.pq[0].at <= t {
		s.step()
	}
	if t > s.now {
		s.now = t
	}
}

// AdvanceBy models an in-progress synchronous operation taking d ticks:
// events falling due inside the window run (interleaved concurrency),
// then the clock lands at the end of the window.
func (s *Sim) AdvanceBy(d clock.Time) {
	s.RunUntil(s.now + d)
}

// Pending reports the number of scheduled events.
func (s *Sim) Pending() int { return len(s.pq) }
