package sim

import (
	"testing"

	"squirrel/internal/clock"
	"squirrel/internal/delta"
	"squirrel/internal/relation"
	"squirrel/internal/vdp"
)

// simPlan builds the paper's T view over R@db1 and S@db2 with optional
// annotations.
func simPlan(t testing.TB, annotate func(b *vdp.Builder)) *vdp.VDP {
	t.Helper()
	b := vdp.NewBuilder()
	if err := b.AddSource("db1", relation.MustSchema("R", []relation.Attribute{
		{Name: "r1", Type: relation.KindInt}, {Name: "r2", Type: relation.KindInt},
		{Name: "r3", Type: relation.KindInt}, {Name: "r4", Type: relation.KindInt}}, "r1")); err != nil {
		t.Fatal(err)
	}
	if err := b.AddSource("db2", relation.MustSchema("S", []relation.Attribute{
		{Name: "s1", Type: relation.KindInt}, {Name: "s2", Type: relation.KindInt},
		{Name: "s3", Type: relation.KindInt}}, "s1")); err != nil {
		t.Fatal(err)
	}
	if err := b.AddViewSQL("T",
		`SELECT r1, r3, s1, s2 FROM R JOIN S ON r2 = s1 WHERE r4 = 100 AND s3 < 50`); err != nil {
		t.Fatal(err)
	}
	if annotate != nil {
		annotate(b)
	}
	v, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func testDelays() Delays {
	return Delays{
		Ann:         map[string]clock.Time{"db1": 100, "db2": 300},
		Comm:        map[string]clock.Time{"db1": 20, "db2": 50},
		QProcSource: map[string]clock.Time{"db1": 10, "db2": 15},
		UHold:       1000,
		UProc:       50,
		QProcMed:    5,
	}
}

// driveWorkload schedules periodic commits and queries up to the horizon.
func driveWorkload(h *Harness, horizon clock.Time, queryAttrs []string) {
	next := int64(1000)
	for t := clock.Time(137); t < horizon; t += 713 {
		t := t
		h.ScheduleCommit(t, "db1", func() *delta.Delta {
			next++
			d := delta.New()
			d.Insert("R", relation.T(next, 10*(1+next%4), next%50, 100))
			return d
		})
	}
	for t := clock.Time(401); t < horizon; t += 977 {
		t := t
		h.ScheduleCommit(t, "db2", func() *delta.Delta {
			next++
			d := delta.New()
			d.Insert("S", relation.T(10*(1+next%4), next%9, int64(t)%60))
			return d
		})
	}
	for t := clock.Time(550); t < horizon; t += 1103 {
		h.ScheduleQuery(t, "T", queryAttrs)
	}
}

func TestTheorem72FreshnessFullyMaterialized(t *testing.T) {
	plan := simPlan(t, nil)
	d := testDelays()
	h, err := NewHarness(plan, nil, d)
	if err != nil {
		t.Fatal(err)
	}
	h.Sim.Horizon = 40000
	driveWorkload(h, 40000, nil)
	h.Sim.Run()

	env := h.Environment()
	if err := env.CheckConsistency(); err != nil {
		t.Fatalf("simulated run inconsistent: %v", err)
	}
	bounds := d.Bounds(h.Med, plan.Sources())
	worst, err := env.CheckFreshness(bounds)
	if err != nil {
		t.Fatalf("freshness bound violated: %v (bounds %v)", err, bounds)
	}
	// Sanity: staleness is real (non-zero) and bounded.
	if worst["db1"] == 0 && worst["db2"] == 0 {
		t.Errorf("no staleness observed; workload too idle? worst=%v", worst)
	}
	_, q := h.Rec.Len()
	if q < 10 {
		t.Errorf("too few queries recorded: %d", q)
	}
}

func TestTheorem72FreshnessHybrid(t *testing.T) {
	// T hybrid (s2 virtual) with S' fully virtual: queries touching s2
	// must poll db2, with Eager Compensation under real delays.
	plan := simPlan(t, func(b *vdp.Builder) {
		b.Annotate("T", vdp.Ann([]string{"r1", "r3", "s1"}, []string{"s2"}))
		b.Annotate("S'", vdp.Ann(nil, []string{"s1", "s2"}))
	})
	d := testDelays()
	h, err := NewHarness(plan, nil, d)
	if err != nil {
		t.Fatal(err)
	}
	h.Sim.Horizon = 40000
	driveWorkload(h, 40000, []string{"r1", "s2"})
	h.Sim.Run()

	env := h.Environment()
	if err := env.CheckConsistency(); err != nil {
		t.Fatalf("hybrid simulated run inconsistent: %v", err)
	}
	bounds := d.Bounds(h.Med, plan.Sources())
	if _, err := env.CheckFreshness(bounds); err != nil {
		t.Fatalf("freshness bound violated: %v", err)
	}
	if h.Med.Stats().SourcePolls <= 2 {
		t.Errorf("hybrid queries should poll: %+v", h.Med.Stats())
	}
}

func TestStalenessGrowsWithHoldDelay(t *testing.T) {
	run := func(hold clock.Time) clock.Time {
		plan := simPlan(t, nil)
		d := testDelays()
		d.UHold = hold
		h, err := NewHarness(plan, nil, d)
		if err != nil {
			t.Fatal(err)
		}
		h.Sim.Horizon = 60000
		driveWorkload(h, 60000, nil)
		h.Sim.Run()
		worst, err := h.Environment().CheckFreshness(clock.Vector{})
		if err != nil {
			t.Fatal(err)
		}
		return worst["db1"]
	}
	small, large := run(500), run(8000)
	if large <= small {
		t.Errorf("staleness should grow with u_hold: %d (hold=500) vs %d (hold=8000)", small, large)
	}
}

func TestInitialStateLoading(t *testing.T) {
	plan := simPlan(t, nil)
	r := relation.NewSet(plan.Node("R").Schema)
	r.Insert(relation.T(1, 10, 5, 100))
	s := relation.NewSet(plan.Node("S").Schema)
	s.Insert(relation.T(10, 1, 20))
	h, err := NewHarness(plan, map[string]map[string]*relation.Relation{
		"db1": {"R": r}, "db2": {"S": s},
	}, testDelays())
	if err != nil {
		t.Fatal(err)
	}
	got := h.Med.StoreSnapshot("T")
	if got == nil || got.Card() != 1 {
		t.Fatalf("initial view: %v", got)
	}
}
