package resilience

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"squirrel/internal/clock"
	"squirrel/internal/relation"
	"squirrel/internal/source"
)

// Faults configures the failure mix injected for one named target. All
// probabilities are in [0,1] and evaluated per operation in the order
// down → scripted → drop → hang → error → latency.
type Faults struct {
	// Down hard-fails every operation (the source is unreachable).
	Down bool
	// ErrProb injects a plain error return.
	ErrProb float64
	// DropProb simulates a mid-stream disconnect: the operation fails and,
	// for net.Conn wrappers, the underlying connection is closed.
	DropProb float64
	// HangProb blocks the operation for Hang before failing it, modelling
	// a stalled peer (exercises per-attempt deadlines).
	HangProb float64
	// Hang is the stall duration when HangProb fires (default 30s).
	Hang time.Duration
	// LatencyProb delays the operation by Latency, then lets it through.
	LatencyProb float64
	// Latency is the injected delay when LatencyProb fires.
	Latency time.Duration
}

// outcome is the decision for a single operation.
type outcome uint8

const (
	passThrough outcome = iota
	failErr
	failDrop
	failHang
	delay
)

// InjectedCounts reports how many faults of each kind fired for a target.
type InjectedCounts struct {
	Errors  uint64
	Drops   uint64
	Hangs   uint64
	Delays  uint64
	DownOps uint64
}

// Injector is a deterministic, seeded chaos source shared by any number
// of wrappers. Each named target (usually a source name) carries its own
// Faults mix plus a scripted fail-next counter for precise tests.
type Injector struct {
	mu       sync.Mutex
	rng      *rand.Rand
	faults   map[string]Faults
	failNext map[string]int
	dropNext map[string]int
	hangNext map[string]int
	hangDur  map[string]time.Duration
	counts   map[string]*InjectedCounts

	// Sleep is the blocking function used for hangs and latency;
	// replaceable in tests. Defaults to time.Sleep.
	Sleep func(time.Duration)
}

// NewInjector builds an injector whose fault decisions are a pure
// function of the seed and the operation order.
func NewInjector(seed int64) *Injector {
	return &Injector{
		rng:      rand.New(rand.NewSource(seed)),
		faults:   map[string]Faults{},
		failNext: map[string]int{},
		dropNext: map[string]int{},
		hangNext: map[string]int{},
		hangDur:  map[string]time.Duration{},
		counts:   map[string]*InjectedCounts{},
		Sleep:    time.Sleep,
	}
}

// Set replaces the fault mix for a target.
func (i *Injector) Set(target string, f Faults) {
	i.mu.Lock()
	i.faults[target] = f
	i.mu.Unlock()
}

// SetDown marks a target hard-down (or back up), keeping the rest of its
// fault mix.
func (i *Injector) SetDown(target string, down bool) {
	i.mu.Lock()
	f := i.faults[target]
	f.Down = down
	i.faults[target] = f
	i.mu.Unlock()
}

// FailNext scripts the next n operations on target to fail with plain
// errors, regardless of probabilities; for deterministic tests.
func (i *Injector) FailNext(target string, n int) {
	i.mu.Lock()
	i.failNext[target] = n
	i.mu.Unlock()
}

// DropNext scripts the next n operations on target to fail as mid-stream
// disconnects (net.Conn wrappers close the underlying connection).
func (i *Injector) DropNext(target string, n int) {
	i.mu.Lock()
	i.dropNext[target] = n
	i.mu.Unlock()
}

// HangNext scripts the next n operations on target to stall for d before
// failing, regardless of probabilities; for deterministic deadline tests.
func (i *Injector) HangNext(target string, n int, d time.Duration) {
	i.mu.Lock()
	i.hangNext[target] = n
	i.hangDur[target] = d
	i.mu.Unlock()
}

// Counts returns a copy of the injected-fault counters for target.
func (i *Injector) Counts(target string) InjectedCounts {
	i.mu.Lock()
	defer i.mu.Unlock()
	if c := i.counts[target]; c != nil {
		return *c
	}
	return InjectedCounts{}
}

func (i *Injector) count(target string) *InjectedCounts {
	c := i.counts[target]
	if c == nil {
		c = &InjectedCounts{}
		i.counts[target] = c
	}
	return c
}

// decide rolls the dice for one operation on target.
func (i *Injector) decide(target string) (outcome, time.Duration) {
	i.mu.Lock()
	defer i.mu.Unlock()
	// Scripted faults fire regardless of whether a probability mix has
	// been configured for the target.
	if n := i.failNext[target]; n > 0 {
		i.failNext[target] = n - 1
		i.count(target).Errors++
		return failErr, 0
	}
	if n := i.dropNext[target]; n > 0 {
		i.dropNext[target] = n - 1
		i.count(target).Drops++
		return failDrop, 0
	}
	if n := i.hangNext[target]; n > 0 {
		i.hangNext[target] = n - 1
		i.count(target).Hangs++
		h := i.hangDur[target]
		if h <= 0 {
			h = 30 * time.Second
		}
		return failHang, h
	}
	f, ok := i.faults[target]
	if !ok {
		return passThrough, 0
	}
	if f.Down {
		i.count(target).DownOps++
		return failErr, 0
	}
	roll := i.rng.Float64()
	if roll < f.DropProb {
		i.count(target).Drops++
		return failDrop, 0
	}
	roll -= f.DropProb
	if roll < f.HangProb {
		i.count(target).Hangs++
		h := f.Hang
		if h <= 0 {
			h = 30 * time.Second
		}
		return failHang, h
	}
	roll -= f.HangProb
	if roll < f.ErrProb {
		i.count(target).Errors++
		return failErr, 0
	}
	roll -= f.ErrProb
	if roll < f.LatencyProb {
		i.count(target).Delays++
		return delay, f.Latency
	}
	return passThrough, 0
}

// Conn is the structural twin of core.SourceConn; declared locally so
// this package stays a leaf (core is free to import it).
type Conn interface {
	Name() string
	QueryMulti(specs []source.QuerySpec) ([]*relation.Relation, clock.Time, error)
}

// ChaosSource wraps a source connection and injects faults keyed by the
// inner connection's name. It implements core.SourceConn.
type ChaosSource struct {
	Inner Conn
	Inj   *Injector
}

// WrapSource is a convenience constructor.
func WrapSource(inner Conn, inj *Injector) *ChaosSource {
	return &ChaosSource{Inner: inner, Inj: inj}
}

// Name returns the inner connection's name.
func (c *ChaosSource) Name() string { return c.Inner.Name() }

// QueryMulti consults the injector before delegating to the inner
// connection.
func (c *ChaosSource) QueryMulti(specs []source.QuerySpec) ([]*relation.Relation, clock.Time, error) {
	name := c.Inner.Name()
	switch out, d := c.Inj.decide(name); out {
	case failErr:
		return nil, 0, fmt.Errorf("resilience: injected error on %q", name)
	case failDrop:
		return nil, 0, fmt.Errorf("resilience: injected disconnect on %q", name)
	case failHang:
		c.Inj.Sleep(d)
		return nil, 0, fmt.Errorf("resilience: injected hang on %q elapsed", name)
	case delay:
		c.Inj.Sleep(d)
	}
	return c.Inner.QueryMulti(specs)
}
