package resilience

import (
	"sync"
	"time"
)

// BreakerState is the classic three-state circuit-breaker automaton.
type BreakerState uint8

const (
	// Closed: requests flow; consecutive failures are counted.
	Closed BreakerState = iota
	// Open: requests fast-fail without touching the source.
	Open
	// HalfOpen: a bounded number of probe requests are let through; one
	// success closes the breaker, one failure re-opens it.
	HalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerPolicy configures a per-source circuit breaker. The zero value
// (Failures <= 0) disables the breaker entirely.
type BreakerPolicy struct {
	// Failures is the number of consecutive failures that trips the
	// breaker open; <= 0 disables it.
	Failures int
	// Cooldown is how long the breaker stays open before letting a
	// half-open probe through (default 1s).
	Cooldown time.Duration
	// Probes is the number of concurrent probes allowed while half-open
	// (default 1).
	Probes int
}

// Enabled reports whether the policy trips at all.
func (p BreakerPolicy) Enabled() bool { return p.Failures > 0 }

// Breaker is a per-source circuit breaker. A nil *Breaker is valid and
// always allows requests (the disabled configuration).
type Breaker struct {
	pol BreakerPolicy
	now func() time.Time

	mu          sync.Mutex
	state       BreakerState
	consecutive int
	openedAt    time.Time
	probes      int
	trips       uint64
}

// NewBreaker builds a breaker for pol, or returns nil when the policy is
// disabled (nil is safe to use everywhere).
func NewBreaker(pol BreakerPolicy) *Breaker {
	if !pol.Enabled() {
		return nil
	}
	if pol.Cooldown <= 0 {
		pol.Cooldown = time.Second
	}
	if pol.Probes <= 0 {
		pol.Probes = 1
	}
	return &Breaker{pol: pol, now: time.Now}
}

// SetNow replaces the breaker's clock; for tests.
func (b *Breaker) SetNow(now func() time.Time) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.now = now
	b.mu.Unlock()
}

// Allow reports whether a request may proceed. While open it fast-fails
// until the cooldown elapses, then transitions to half-open and admits up
// to Probes probe requests.
func (b *Breaker) Allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case Open:
		if b.now().Sub(b.openedAt) < b.pol.Cooldown {
			return false
		}
		b.state = HalfOpen
		b.probes = 1
		return true
	case HalfOpen:
		if b.probes >= b.pol.Probes {
			return false
		}
		b.probes++
		return true
	}
	return true
}

// Success records a successful request; a half-open success closes the
// breaker and resets the failure count.
func (b *Breaker) Success() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.state = Closed
	b.consecutive = 0
	b.probes = 0
	b.mu.Unlock()
}

// Failure records a failed request; enough consecutive failures (or any
// half-open failure) opens the breaker.
func (b *Breaker) Failure() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case HalfOpen:
		b.open()
	case Closed:
		b.consecutive++
		if b.consecutive >= b.pol.Failures {
			b.open()
		}
	}
}

func (b *Breaker) open() {
	b.state = Open
	b.openedAt = b.now()
	b.consecutive = 0
	b.probes = 0
	b.trips++
}

// State returns the current automaton state (Closed for a nil breaker).
func (b *Breaker) State() BreakerState {
	if b == nil {
		return Closed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	// Surface the cooldown expiry without requiring a probe first.
	if b.state == Open && b.now().Sub(b.openedAt) >= b.pol.Cooldown {
		return HalfOpen
	}
	return b.state
}

// Trips returns how many times the breaker has opened.
func (b *Breaker) Trips() uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}
