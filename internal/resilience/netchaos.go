package resilience

import (
	"fmt"
	"net"
)

// ChaosNetConn wraps a net.Conn, injecting faults on Read and Write keyed
// by a label (typically the peer source's name). A drop closes the
// underlying connection, modelling a mid-stream disconnect; a hang stalls
// the call before failing it.
type ChaosNetConn struct {
	net.Conn
	inj   *Injector
	label string
}

// WrapNetConn wraps conn with fault injection under the given label.
func WrapNetConn(conn net.Conn, inj *Injector, label string) *ChaosNetConn {
	return &ChaosNetConn{Conn: conn, inj: inj, label: label}
}

func (c *ChaosNetConn) inject(op string) error {
	switch out, d := c.inj.decide(c.label); out {
	case failErr:
		return fmt.Errorf("resilience: injected %s error on %q", op, c.label)
	case failDrop:
		c.Conn.Close()
		return fmt.Errorf("resilience: injected disconnect on %q", c.label)
	case failHang:
		c.inj.Sleep(d)
		return fmt.Errorf("resilience: injected hang on %q elapsed", c.label)
	case delay:
		c.inj.Sleep(d)
	}
	return nil
}

func (c *ChaosNetConn) Read(p []byte) (int, error) {
	if err := c.inject("read"); err != nil {
		return 0, err
	}
	return c.Conn.Read(p)
}

func (c *ChaosNetConn) Write(p []byte) (int, error) {
	if err := c.inject("write"); err != nil {
		return 0, err
	}
	return c.Conn.Write(p)
}

var _ net.Conn = (*ChaosNetConn)(nil)
