package resilience

import "squirrel/internal/clock"

// ComposeFreshness composes Theorem 7.2 staleness bounds across one
// federation hop (DESIGN.md §11). The theorem bounds, per source, how far
// behind a mediator's answer may lag that source's committed state. When
// a "source" is itself a mediator tier, its own answers lag the base
// sources by the tier's bound — so the upstream guarantee, restated in
// base-source coordinates, is the sum of the two hops:
//
//	f_composed[base] = f_upper[tier] + f_lower[base]
//
// upper is the upstream mediator's bound vector, keyed by its direct
// sources; lower maps each federated-tier source name to that tier's own
// bound vector, keyed by base sources. Components of upper with no lower
// entry are plain sources and pass through unchanged. When two tiers
// expose the same base source, the composed bound keeps the WORST (max)
// path: a bound must hold for every way the data can flow.
//
// The composition is associative, so deeper trees fold hop by hop:
// compose the leaves into their parents first, then the parents upward.
func ComposeFreshness(upper clock.Vector, lower map[string]clock.Vector) clock.Vector {
	out := make(clock.Vector, len(upper))
	for src, f := range upper {
		tier, federated := lower[src]
		if !federated {
			if f > out[src] {
				out[src] = f
			}
			continue
		}
		for base, fb := range tier {
			if composed := f + fb; composed > out[base] {
				out[base] = composed
			}
		}
	}
	return out
}
