// Package resilience provides the source fault-tolerance building blocks
// of the mediator stack: capped exponential backoff with deterministic
// jitter, a per-source circuit breaker (closed/open/half-open with probe),
// and a seeded fault injector with wrappers at both the source-connection
// and net.Conn layers. The paper's premise is mediation over *autonomous*
// sources that can slow down, disconnect, or vanish; this package gives
// the mediator an explicit fault boundary per source so one failed poll
// does not abort a whole transaction, and so chaos can be injected
// deterministically in tests.
package resilience

import (
	"math/rand"
	"sync"
	"time"
)

// RetryPolicy bounds repeated attempts against a failing source. The zero
// value (MaxAttempts <= 1) means a single attempt: fail-fast, exactly the
// pre-resilience behavior.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts (first try included).
	MaxAttempts int
	// BaseDelay is the delay before the first retry; each subsequent retry
	// doubles it, capped at MaxDelay.
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth (0 means 16×BaseDelay).
	MaxDelay time.Duration
	// JitterFrac in [0,1] is the portion of each delay drawn uniformly at
	// random (seeded, deterministic): delay = (1-j)·d + rand(0, j·d).
	JitterFrac float64
}

// Enabled reports whether the policy allows any retries at all.
func (p RetryPolicy) Enabled() bool { return p.MaxAttempts > 1 }

// Backoff produces the delay schedule of a RetryPolicy with deterministic,
// seeded jitter. Safe for concurrent use.
type Backoff struct {
	pol RetryPolicy

	mu  sync.Mutex
	rng *rand.Rand
}

// NewBackoff builds a backoff schedule for pol; the seed makes the jitter
// sequence reproducible.
func NewBackoff(pol RetryPolicy, seed int64) *Backoff {
	return &Backoff{pol: pol, rng: rand.New(rand.NewSource(seed))}
}

// Delay returns the pause before retry number `retry` (1-based: the delay
// after the first failed attempt is Delay(1)).
func (b *Backoff) Delay(retry int) time.Duration {
	if retry < 1 {
		retry = 1
	}
	d := b.pol.BaseDelay
	if d <= 0 {
		return 0
	}
	maxD := b.pol.MaxDelay
	if maxD <= 0 {
		maxD = 16 * b.pol.BaseDelay
	}
	for i := 1; i < retry; i++ {
		d *= 2
		if d >= maxD {
			d = maxD
			break
		}
	}
	if d > maxD {
		d = maxD
	}
	j := b.pol.JitterFrac
	if j <= 0 {
		return d
	}
	if j > 1 {
		j = 1
	}
	jitterSpan := time.Duration(float64(d) * j)
	fixed := d - jitterSpan
	b.mu.Lock()
	r := b.rng.Int63n(int64(jitterSpan) + 1)
	b.mu.Unlock()
	return fixed + time.Duration(r)
}
