package resilience

import (
	"testing"
	"time"
)

func TestBackoffSchedule(t *testing.T) {
	pol := RetryPolicy{MaxAttempts: 5, BaseDelay: 10 * time.Millisecond, MaxDelay: 40 * time.Millisecond}
	b := NewBackoff(pol, 1)
	want := []time.Duration{10, 20, 40, 40, 40}
	for i, w := range want {
		if got := b.Delay(i + 1); got != w*time.Millisecond {
			t.Errorf("Delay(%d)=%v, want %v", i+1, got, w*time.Millisecond)
		}
	}
	if (RetryPolicy{}).Enabled() {
		t.Error("zero policy must be disabled (fail-fast)")
	}
}

func TestBackoffJitterDeterministic(t *testing.T) {
	pol := RetryPolicy{MaxAttempts: 3, BaseDelay: 10 * time.Millisecond, JitterFrac: 0.5}
	a := NewBackoff(pol, 42)
	b := NewBackoff(pol, 42)
	for i := 1; i <= 8; i++ {
		da, db := a.Delay(i), b.Delay(i)
		if da != db {
			t.Fatalf("same seed diverged at retry %d: %v vs %v", i, da, db)
		}
		// Jittered delay stays within [(1-j)d, d].
		full := b.pol.BaseDelay
		for k := 1; k < i && full < 16*b.pol.BaseDelay; k++ {
			full *= 2
		}
		if full > 16*b.pol.BaseDelay {
			full = 16 * b.pol.BaseDelay
		}
		if da < full/2 || da > full {
			t.Errorf("retry %d: delay %v outside [%v,%v]", i, da, full/2, full)
		}
	}
}

func TestBreakerTransitions(t *testing.T) {
	br := NewBreaker(BreakerPolicy{Failures: 2, Cooldown: time.Minute})
	now := time.Unix(0, 0)
	br.SetNow(func() time.Time { return now })

	if !br.Allow() || br.State() != Closed {
		t.Fatal("new breaker must be closed")
	}
	br.Failure()
	if br.State() != Closed {
		t.Fatal("one failure must not trip a Failures=2 breaker")
	}
	br.Failure()
	if br.State() != Open || br.Allow() {
		t.Fatalf("two failures must open: state=%v", br.State())
	}
	if br.Trips() != 1 {
		t.Fatalf("trips=%d", br.Trips())
	}

	// Cooldown expiry: one probe allowed, a second concurrent probe is not.
	now = now.Add(2 * time.Minute)
	if br.State() != HalfOpen {
		t.Fatalf("after cooldown: state=%v", br.State())
	}
	if !br.Allow() {
		t.Fatal("half-open must admit a probe")
	}
	if br.Allow() {
		t.Fatal("half-open must reject a second concurrent probe")
	}

	// Probe failure re-opens; probe success closes.
	br.Failure()
	if br.State() != Open || br.Trips() != 2 {
		t.Fatalf("half-open failure must re-open: state=%v trips=%d", br.State(), br.Trips())
	}
	now = now.Add(2 * time.Minute)
	if !br.Allow() {
		t.Fatal("second probe window")
	}
	br.Success()
	if br.State() != Closed || !br.Allow() {
		t.Fatal("half-open success must close")
	}

	// A disabled policy yields a nil breaker that always allows.
	var nilBr *Breaker = NewBreaker(BreakerPolicy{})
	if nilBr != nil {
		t.Fatal("disabled policy must return nil")
	}
	if !nilBr.Allow() || nilBr.State() != Closed || nilBr.Trips() != 0 {
		t.Fatal("nil breaker must be a no-op that always allows")
	}
	nilBr.Success()
	nilBr.Failure()
}

func TestInjectorDeterministic(t *testing.T) {
	mix := Faults{ErrProb: 0.3, DropProb: 0.1, HangProb: 0.05, Hang: time.Nanosecond, LatencyProb: 0.2, Latency: time.Nanosecond}
	run := func(seed int64) []outcome {
		inj := NewInjector(seed)
		inj.Sleep = func(time.Duration) {}
		inj.Set("s", mix)
		var outs []outcome
		for i := 0; i < 64; i++ {
			o, _ := inj.decide("s")
			outs = append(outs, o)
		}
		return outs
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at op %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical 64-op traces")
	}
}

func TestInjectorScriptedAndDown(t *testing.T) {
	inj := NewInjector(1)
	inj.Sleep = func(time.Duration) {}

	// Unknown targets always pass.
	if o, _ := inj.decide("unknown"); o != passThrough {
		t.Fatal("unconfigured target must pass through")
	}

	inj.Set("s", Faults{})
	inj.FailNext("s", 2)
	for i := 0; i < 2; i++ {
		if o, _ := inj.decide("s"); o != failErr {
			t.Fatalf("scripted op %d did not fail", i)
		}
	}
	if o, _ := inj.decide("s"); o != passThrough {
		t.Fatal("script exhausted, must pass")
	}

	inj.SetDown("s", true)
	if o, _ := inj.decide("s"); o != failErr {
		t.Fatal("down target must fail")
	}
	inj.SetDown("s", false)
	if o, _ := inj.decide("s"); o != passThrough {
		t.Fatal("recovered target must pass")
	}
	got := inj.Counts("s")
	if got.Errors != 2 || got.DownOps != 1 {
		t.Fatalf("counts: %+v", got)
	}
}
