package resilience

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func chaosTempFile(t *testing.T, fi *FileInjector) (*ChaosFile, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "chaos.log")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return fi.Wrap(f), path
}

func TestFileInjectorKillAtByteLeavesTornPrefix(t *testing.T) {
	fi := NewFileInjector()
	cf, path := chaosTempFile(t, fi)
	if _, err := cf.WriteAt([]byte("0123456789"), 0); err != nil {
		t.Fatal(err)
	}
	fi.KillAtByte(14) // cut lands 4 bytes into the next write
	n, err := cf.WriteAt([]byte("abcdefgh"), 10)
	if !errors.Is(err, ErrCrashed) || n != 4 {
		t.Fatalf("kill write: n=%d err=%v", n, err)
	}
	// Dead process: everything fails from here on.
	if _, err := cf.WriteAt([]byte("x"), 14); !errors.Is(err, ErrCrashed) {
		t.Errorf("post-crash write: %v", err)
	}
	if err := cf.Sync(); !errors.Is(err, ErrCrashed) {
		t.Errorf("post-crash sync: %v", err)
	}
	if err := cf.Truncate(0); !errors.Is(err, ErrCrashed) {
		t.Errorf("post-crash truncate: %v", err)
	}
	if !fi.Crashed() {
		t.Error("Crashed() = false after kill")
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "0123456789abcd" {
		t.Errorf("on-disk bytes %q, want torn prefix %q", got, "0123456789abcd")
	}
}

func TestFileInjectorShortWriteThenHeal(t *testing.T) {
	fi := NewFileInjector()
	cf, path := chaosTempFile(t, fi)
	fi.ShortWriteNext(1, 3)
	n, err := cf.WriteAt([]byte("0123456789"), 0)
	if !errors.Is(err, ErrShortWrite) || n != 3 {
		t.Fatalf("short write: n=%d err=%v", n, err)
	}
	// The caller's rollback path: truncate the torn bytes, then retry.
	if err := cf.Truncate(0); err != nil {
		t.Fatalf("rollback truncate: %v", err)
	}
	if _, err := cf.WriteAt([]byte("abc"), 0); err != nil {
		t.Fatalf("retry write: %v", err)
	}
	if err := cf.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "abc" {
		t.Errorf("on-disk bytes %q after heal, want %q", got, "abc")
	}
	c := fi.Counts()
	if c.ShortWrites != 1 || c.Syncs != 1 || c.Crashed {
		t.Errorf("counts = %+v", c)
	}
}

func TestFileInjectorFailSyncNext(t *testing.T) {
	fi := NewFileInjector()
	cf, _ := chaosTempFile(t, fi)
	fi.FailSyncNext(2)
	for i := 0; i < 2; i++ {
		if err := cf.Sync(); !errors.Is(err, ErrSyncFailed) {
			t.Fatalf("sync %d: %v", i, err)
		}
	}
	if err := cf.Sync(); err != nil {
		t.Fatalf("healed sync: %v", err)
	}
	if c := fi.Counts(); c.SyncFails != 2 || c.Syncs != 1 {
		t.Errorf("counts = %+v", c)
	}
}

func TestFileInjectorKillAtPastOffsetKillsNextWrite(t *testing.T) {
	fi := NewFileInjector()
	cf, path := chaosTempFile(t, fi)
	if _, err := cf.WriteAt([]byte("abcde"), 0); err != nil {
		t.Fatal(err)
	}
	fi.KillAtByte(2) // already past: next write dies with zero bytes
	n, err := cf.WriteAt([]byte("fgh"), 5)
	if !errors.Is(err, ErrCrashed) || n != 0 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "abcde" {
		t.Errorf("on-disk bytes %q, want %q", got, "abcde")
	}
}
