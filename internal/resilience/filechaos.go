package resilience

import (
	"errors"
	"fmt"
	"sync"
)

// This file extends chaos injection to the filesystem layer: a
// fault-injecting wrapper for the write side of a log file (the shape
// internal/wal writes through — declared structurally here, like Conn,
// so resilience stays decoupled from wal). Faults are scripted, not
// probabilistic: crash-recovery soaks decide exactly where a "power cut"
// lands and then prove the recovery path digests whatever that leaves on
// disk — a torn tail record, a short write, a failed fsync.

// LogFile is the write side of an append-style log file. *os.File
// satisfies it.
type LogFile interface {
	WriteAt(p []byte, off int64) (int, error)
	Sync() error
	Truncate(size int64) error
	Close() error
}

// ErrCrashed is returned by every operation on a chaos file after its
// scripted kill point fired: the simulated process is dead, and whatever
// bytes reached the file before the cut are all that survives.
var ErrCrashed = errors.New("resilience: simulated crash (power cut)")

// ErrShortWrite is the injected error behind a scripted short write.
var ErrShortWrite = errors.New("resilience: injected short write")

// ErrSyncFailed is the injected error behind a scripted fsync failure.
var ErrSyncFailed = errors.New("resilience: injected fsync failure")

// FileCounts reports what a FileInjector actually did.
type FileCounts struct {
	Writes       uint64 // WriteAt calls that reached the file (fully)
	BytesWritten int64  // bytes that reached the file, torn bytes included
	Syncs        uint64 // Syncs passed through
	ShortWrites  uint64 // scripted short writes fired
	SyncFails    uint64 // scripted fsync failures fired
	Crashed      bool   // the kill point fired
}

// FileInjector scripts filesystem faults for the chaos files wrapping
// one log. All wrapped files share the injector's cumulative byte count,
// so a kill offset is a point in the log's total write stream even
// across segment rotation.
type FileInjector struct {
	mu      sync.Mutex
	killAt  int64 // cumulative write offset of the power cut; -1 = never
	written int64
	short   int // pending scripted short writes (keep `shortKeep` bytes)
	keep    int
	syncs   int // pending scripted fsync failures
	crashed bool
	counts  FileCounts
}

// NewFileInjector builds an injector with no scripted faults.
func NewFileInjector() *FileInjector {
	return &FileInjector{killAt: -1}
}

// KillAtByte schedules a power cut: the write that would carry the
// injector's cumulative byte count past off is truncated at exactly off,
// and every operation afterwards fails with ErrCrashed. off <= the
// current count kills the very next write outright.
func (fi *FileInjector) KillAtByte(off int64) {
	fi.mu.Lock()
	fi.killAt = off
	fi.mu.Unlock()
}

// ShortWriteNext scripts the next n writes to persist only keep bytes
// each and fail with ErrShortWrite — an out-of-space or EINTR-style torn
// write the caller is expected to roll back.
func (fi *FileInjector) ShortWriteNext(n, keep int) {
	fi.mu.Lock()
	fi.short, fi.keep = n, keep
	fi.mu.Unlock()
}

// FailSyncNext scripts the next n Sync calls to fail with ErrSyncFailed
// (after the data reached the OS — the durability of preceding writes is
// exactly as unknown as after a real fsync failure).
func (fi *FileInjector) FailSyncNext(n int) {
	fi.mu.Lock()
	fi.syncs = n
	fi.mu.Unlock()
}

// Crashed reports whether the kill point fired.
func (fi *FileInjector) Crashed() bool {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return fi.crashed
}

// Counts returns a snapshot of the injector's activity.
func (fi *FileInjector) Counts() FileCounts {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	c := fi.counts
	c.Crashed = fi.crashed
	return c
}

// Wrap returns a chaos file injecting this injector's faults in front of
// inner.
func (fi *FileInjector) Wrap(inner LogFile) *ChaosFile {
	return &ChaosFile{inner: inner, inj: fi}
}

// ChaosFile is a LogFile that injects its FileInjector's scripted faults.
type ChaosFile struct {
	inner LogFile
	inj   *FileInjector
}

// WriteAt implements LogFile. A scripted kill writes the prefix that
// "made it to disk before the power cut" and fails with ErrCrashed; a
// scripted short write persists keep bytes and fails with ErrShortWrite.
func (c *ChaosFile) WriteAt(p []byte, off int64) (int, error) {
	fi := c.inj
	fi.mu.Lock()
	if fi.crashed {
		fi.mu.Unlock()
		return 0, ErrCrashed
	}
	if fi.killAt >= 0 && fi.written+int64(len(p)) > fi.killAt {
		keep := fi.killAt - fi.written
		if keep < 0 {
			keep = 0
		}
		fi.crashed = true
		fi.written += keep
		fi.counts.BytesWritten += keep
		fi.mu.Unlock()
		if keep > 0 {
			c.inner.WriteAt(p[:keep], off) //nolint:errcheck // the crash preempts any error
		}
		return int(keep), ErrCrashed
	}
	if fi.short > 0 {
		fi.short--
		keep := fi.keep
		if keep > len(p) {
			keep = len(p)
		}
		fi.written += int64(keep)
		fi.counts.ShortWrites++
		fi.counts.BytesWritten += int64(keep)
		fi.mu.Unlock()
		if keep > 0 {
			if n, err := c.inner.WriteAt(p[:keep], off); err != nil {
				return n, err
			}
		}
		return keep, fmt.Errorf("%w: %d of %d bytes", ErrShortWrite, keep, len(p))
	}
	fi.mu.Unlock()
	n, err := c.inner.WriteAt(p, off)
	fi.mu.Lock()
	fi.written += int64(n)
	fi.counts.BytesWritten += int64(n)
	if err == nil {
		fi.counts.Writes++
	}
	fi.mu.Unlock()
	return n, err
}

// Sync implements LogFile.
func (c *ChaosFile) Sync() error {
	fi := c.inj
	fi.mu.Lock()
	if fi.crashed {
		fi.mu.Unlock()
		return ErrCrashed
	}
	if fi.syncs > 0 {
		fi.syncs--
		fi.counts.SyncFails++
		fi.mu.Unlock()
		return ErrSyncFailed
	}
	fi.mu.Unlock()
	err := c.inner.Sync()
	if err == nil {
		fi.mu.Lock()
		fi.counts.Syncs++
		fi.mu.Unlock()
	}
	return err
}

// Truncate implements LogFile. It passes through unless the process is
// "dead": a live log must be able to roll back a torn append (the
// self-healing path after a short write or sync failure).
func (c *ChaosFile) Truncate(size int64) error {
	fi := c.inj
	fi.mu.Lock()
	crashed := fi.crashed
	fi.mu.Unlock()
	if crashed {
		return ErrCrashed
	}
	return c.inner.Truncate(size)
}

// Close implements LogFile. The underlying file is always closed (the
// soak reopens the directory for recovery); the error reports the crash
// if one fired.
func (c *ChaosFile) Close() error {
	err := c.inner.Close()
	fi := c.inj
	fi.mu.Lock()
	crashed := fi.crashed
	fi.mu.Unlock()
	if crashed {
		return ErrCrashed
	}
	return err
}
