package resilience

import (
	"testing"

	"squirrel/internal/clock"
)

func TestComposeFreshness(t *testing.T) {
	upper := clock.Vector{"medA": 10, "medB": 7, "db9": 3}
	lower := map[string]clock.Vector{
		"medA": {"db1": 5, "db2": 8},
		"medB": {"db2": 1, "db3": 4},
	}
	got := ComposeFreshness(upper, lower)
	want := clock.Vector{
		"db1": 15, // 10 + 5 through medA
		"db2": 18, // max(10+8 via medA, 7+1 via medB): the worst path wins
		"db3": 11, // 7 + 4 through medB
		"db9": 3,  // plain source, passes through
	}
	if len(got) != len(want) {
		t.Fatalf("composed %v, want %v", got, want)
	}
	for src, f := range want {
		if got[src] != f {
			t.Fatalf("composed[%s] = %d, want %d (full: %v)", src, got[src], f, got)
		}
	}

	// Associativity over a three-tier chain: folding leaf-first equals
	// folding top-first.
	top := clock.Vector{"mid": 2}
	mid := clock.Vector{"leaf": 3}
	leaf := clock.Vector{"db": 4}
	a := ComposeFreshness(ComposeFreshness(top, map[string]clock.Vector{"mid": mid}),
		map[string]clock.Vector{"leaf": leaf})
	b := ComposeFreshness(top,
		map[string]clock.Vector{"mid": ComposeFreshness(mid, map[string]clock.Vector{"leaf": leaf})})
	if a["db"] != 9 || b["db"] != 9 {
		t.Fatalf("associativity broken: %v vs %v", a, b)
	}
}
