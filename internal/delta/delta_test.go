package delta

import (
	"math/rand"
	"testing"
	"testing/quick"

	"squirrel/internal/relation"
)

func schemaR(t testing.TB) *relation.Schema {
	t.Helper()
	return relation.MustSchema("R",
		[]relation.Attribute{{Name: "a", Type: relation.KindInt}, {Name: "b", Type: relation.KindInt}}, "a")
}

func randDelta(rng *rand.Rand, rel string, n int) *RelDelta {
	d := NewRel(rel)
	for i := 0; i < n; i++ {
		d.Add(relation.T(rng.Intn(12), rng.Intn(5)), rng.Intn(7)-3)
	}
	return d
}

func randBag(rng *rand.Rand, s *relation.Schema, n int) *relation.Relation {
	r := relation.NewBag(s)
	for i := 0; i < n; i++ {
		r.Add(relation.T(rng.Intn(12), rng.Intn(5)), rng.Intn(3)+1)
	}
	return r
}

func TestInsertDeleteAnnihilate(t *testing.T) {
	d := NewRel("R")
	tp := relation.T(1, 2)
	d.Insert(tp)
	d.Delete(tp)
	if !d.IsEmpty() {
		t.Fatalf("insert+delete should annihilate: %s", d)
	}
}

func TestCountAndCard(t *testing.T) {
	d := NewRel("R")
	d.Add(relation.T(1, 1), 3)
	d.Add(relation.T(2, 2), -2)
	if d.Count(relation.T(1, 1)) != 3 || d.Count(relation.T(2, 2)) != -2 || d.Count(relation.T(9, 9)) != 0 {
		t.Errorf("counts wrong")
	}
	if d.Card() != 5 || d.Len() != 2 {
		t.Errorf("card=%d len=%d", d.Card(), d.Len())
	}
}

func TestInsertionsDeletions(t *testing.T) {
	d := NewRel("R")
	d.Add(relation.T(1, 1), 2)
	d.Add(relation.T(2, 2), -1)
	ins, del := d.Insertions(), d.Deletions()
	if len(ins) != 1 || ins[0].Count != 2 {
		t.Errorf("insertions: %v", ins)
	}
	if len(del) != 1 || del[0].Count != 1 {
		t.Errorf("deletions: %v", del)
	}
}

// forEachBackend runs fn once per physical backend with the
// process-default backend switched, so every NewRel/NewBag inside the
// law exercises that representation.
func forEachBackend(t *testing.T, fn func(t *testing.T)) {
	t.Helper()
	for _, bk := range []relation.Backend{relation.Rows, relation.Blocks} {
		t.Run("backend="+bk.String(), func(t *testing.T) {
			prev := relation.DefaultBackend()
			relation.SetDefaultBackend(bk)
			t.Cleanup(func() { relation.SetDefaultBackend(prev) })
			fn(t)
		})
	}
}

// smashLaw: apply(db, Δ1 ! Δ2) == apply(apply(db, Δ1), Δ2) — the
// defining smash law.
func smashLaw(t *testing.T, rng *rand.Rand) bool {
	s := schemaR(t)
	db := randBag(rng, s, 10)
	d1 := randDelta(rng, "R", 8)
	d2 := randDelta(rng, "R", 8)

	// Left side: smash then apply (clamped, since random deltas may underflow).
	left := db.Clone()
	sm := d1.Clone()
	sm.Smash(d2)
	// Right side: apply sequentially.
	right := db.Clone()
	d1.ApplyTo(right, false)
	d2.ApplyTo(right, false)

	sm.ApplyTo(left, false)
	// NOTE: with clamping, smash law can differ when intermediate
	// underflow occurs; restrict to non-underflowing runs.
	chk := db.Clone()
	if err := d1.ApplyTo(chk, true); err != nil {
		return true // skip: d1 underflows, law not required
	}
	if err := d2.ApplyTo(chk, true); err != nil {
		return true
	}
	return left.Equal(right)
}

// inverseLaw: apply(apply(db, Δ), Δ⁻¹) == db for deltas that are
// non-redundant on db.
func inverseLaw(t *testing.T, rng *rand.Rand) bool {
	s := schemaR(t)
	db := randBag(rng, s, 10)
	d := randDelta(rng, "R", 8)
	work := db.Clone()
	if err := d.ApplyTo(work, true); err != nil {
		return true // redundant on db; law not required
	}
	if err := d.Inverse().ApplyTo(work, true); err != nil {
		return false
	}
	return work.Equal(db)
}

// inverseOfSmashLaw: (Δ1!Δ2)⁻¹ == Δ2⁻¹!Δ1⁻¹
func inverseOfSmashLaw(t *testing.T, rng *rand.Rand) bool {
	d1 := randDelta(rng, "R", 6)
	d2 := randDelta(rng, "R", 6)
	left := d1.Clone()
	left.Smash(d2)
	left = left.Inverse()
	right := d2.Inverse()
	right.Smash(d1.Inverse())
	return left.Equal(right)
}

// selectProjectCommuteLaw: selection and projection commute with apply:
// π/σ(apply(R,Δ)) == apply(π/σ(R), π/σ(Δ))
func selectProjectCommuteLaw(t *testing.T, rng *rand.Rand) bool {
	s := schemaR(t)
	pred := func(tp relation.Tuple) (bool, error) { return tp[1].AsInt() < 3, nil }
	db := randBag(rng, s, 10)
	d := randDelta(rng, "R", 8)

	// Left: apply then transform.
	applied := db.Clone()
	d.ApplyTo(applied, false)
	leftSel := relation.NewBag(s)
	applied.Each(func(tp relation.Tuple, n int) bool {
		if ok, _ := pred(tp); ok {
			leftSel.Add(tp, n)
		}
		return true
	})

	// Right: transform both then apply. Must use clamp-free runs.
	chk := db.Clone()
	if err := d.ApplyTo(chk, true); err != nil {
		return true // skip: clamping breaks commutation, law not required
	}
	rightSel := relation.NewBag(s)
	db.Each(func(tp relation.Tuple, n int) bool {
		if ok, _ := pred(tp); ok {
			rightSel.Add(tp, n)
		}
		return true
	})
	ds, err := d.Select(pred)
	if err != nil {
		t.Fatal(err)
	}
	ds.ApplyTo(rightSel, false)
	if !leftSel.Equal(rightSel) {
		t.Logf("select does not commute with apply")
		return false
	}

	// Projection onto position 0 (bag projection).
	proj := []int{0}
	pSchema := relation.MustSchema("P", []relation.Attribute{{Name: "a", Type: relation.KindInt}})
	leftP := relation.NewBag(pSchema)
	applied.Each(func(tp relation.Tuple, n int) bool {
		leftP.Add(tp.Project(proj), n)
		return true
	})
	rightP := relation.NewBag(pSchema)
	db.Each(func(tp relation.Tuple, n int) bool {
		rightP.Add(tp.Project(proj), n)
		return true
	})
	d.Project("P", proj).ApplyTo(rightP, false)
	if !leftP.Equal(rightP) {
		t.Logf("project does not commute with apply")
		return false
	}
	return true
}

// TestDeltaLaws is the shared table-driven harness: every algebraic law
// runs against both physical backends over a spread of random seeds, so
// a columnar kernel that diverges from the row-oriented semantics fails
// here before the end-to-end oracle ever sees it.
func TestDeltaLaws(t *testing.T) {
	laws := []struct {
		name  string
		seeds int
		check func(t *testing.T, rng *rand.Rand) bool
	}{
		{"smash", 80, smashLaw},
		{"inverse", 80, inverseLaw},
		{"inverse-of-smash", 20, inverseOfSmashLaw},
		{"select-project-commute", 30, selectProjectCommuteLaw},
	}
	for _, law := range laws {
		law := law
		t.Run(law.name, func(t *testing.T) {
			forEachBackend(t, func(t *testing.T) {
				for seed := 0; seed < law.seeds; seed++ {
					rng := rand.New(rand.NewSource(int64(seed)))
					if !law.check(t, rng) {
						t.Fatalf("law %s failed on %s backend at seed %d",
							law.name, relation.DefaultBackend(), seed)
					}
				}
			})
		})
	}
}

// TestDeltaCrossBackendEquivalence drives the same random delta program
// into a rows-backed and a blocks-backed delta and requires identical
// deterministic renders at every step, including through smash, inverse,
// project, select, and distinct.
func TestDeltaCrossBackendEquivalence(t *testing.T) {
	pred := func(tp relation.Tuple) (bool, error) { return tp[1].AsInt() < 3, nil }
	for seed := int64(0); seed < 10; seed++ {
		rngA := rand.New(rand.NewSource(seed))
		rngB := rand.New(rand.NewSource(seed))
		dr := NewRelWith("R", relation.Rows)
		db := NewRelWith("R", relation.Blocks)
		for i := 0; i < 120; i++ {
			// rngA and rngB share a seed, so both deltas see the same
			// operation stream.
			dr.Add(relation.T(rngA.Intn(12), rngA.Intn(5)), rngA.Intn(7)-3)
			db.Add(relation.T(rngB.Intn(12), rngB.Intn(5)), rngB.Intn(7)-3)
		}
		if dr.String() != db.String() {
			t.Fatalf("seed %d: renders diverge\nrows:\n%s\nblocks:\n%s", seed, dr, db)
		}
		if !dr.Equal(db) || !db.Equal(dr) {
			t.Fatalf("seed %d: cross-backend Equal failed", seed)
		}
		if dr.Inverse().String() != db.Inverse().String() {
			t.Fatalf("seed %d: inverse diverges", seed)
		}
		if dr.Project("P", []int{1}).String() != db.Project("P", []int{1}).String() {
			t.Fatalf("seed %d: project diverges", seed)
		}
		sr, err1 := dr.Select(pred)
		sb, err2 := db.Select(pred)
		if err1 != nil || err2 != nil || sr.String() != sb.String() {
			t.Fatalf("seed %d: select diverges: %v %v", seed, err1, err2)
		}
		oldR := relation.NewWith(schemaR(t), relation.Bag, relation.Rows)
		oldB := relation.NewWith(schemaR(t), relation.Bag, relation.Blocks)
		rngC := rand.New(rand.NewSource(seed + 100))
		for i := 0; i < 10; i++ {
			tp := relation.T(rngC.Intn(12), rngC.Intn(5))
			n := rngC.Intn(3) + 1
			oldR.Add(tp, n)
			oldB.Add(tp, n)
		}
		if dr.Distinct(oldR).String() != db.Distinct(oldB).String() {
			t.Fatalf("seed %d: distinct diverges", seed)
		}
		// Cross-backend smash (rows delta into blocks delta and back).
		x := db.Clone()
		x.Smash(dr)
		y := dr.Clone()
		y.Smash(db)
		if x.String() != y.String() {
			t.Fatalf("seed %d: cross-backend smash diverges", seed)
		}
	}
}

func TestApplyStrictDetectsRedundancy(t *testing.T) {
	s := schemaR(t)
	set := relation.NewSet(s)
	set.Insert(relation.T(1, 1))
	d := NewRel("R")
	d.Insert(relation.T(1, 1)) // redundant insertion
	if err := d.ApplyTo(set, true); err == nil {
		t.Errorf("strict apply must reject redundant insertion into set")
	}
	bag := relation.NewBag(s)
	d2 := NewRel("R")
	d2.Delete(relation.T(5, 5)) // deleting absent tuple
	if err := d2.ApplyTo(bag, true); err == nil {
		t.Errorf("strict apply must reject underflow deletion")
	}
	if err := d2.ApplyTo(bag, false); err != nil {
		t.Errorf("clamped apply should not error: %v", err)
	}
}

func TestSmashSetOverride(t *testing.T) {
	// Paper/HJ91: Δ1 ! Δ2 = union with conflicting atoms of Δ1 removed.
	d1 := NewRel("R")
	d1.Insert(relation.T(1, 1))
	d2 := NewRel("R")
	d2.Delete(relation.T(1, 1))
	d1.SmashSet(d2)
	if d1.Count(relation.T(1, 1)) != -1 {
		t.Errorf("override smash: later delete must win, got %d", d1.Count(relation.T(1, 1)))
	}
	// Additive smash annihilates instead; both agree under apply for
	// non-redundant sequences (insert then delete of a tuple absent in db).
	db := relation.NewSet(schemaR(t))
	a := db.Clone()
	add := NewRel("R")
	add.Insert(relation.T(1, 1))
	add.Smash(func() *RelDelta { x := NewRel("R"); x.Delete(relation.T(1, 1)); return x }())
	add.ApplyTo(a, false)
	b := db.Clone()
	d1.ApplyTo(b, false)
	if !a.Equal(b) {
		t.Errorf("additive and override smash disagree under apply")
	}
}

func TestDistinctDelta(t *testing.T) {
	s := schemaR(t)
	old := relation.NewBag(s)
	old.Add(relation.T(1, 1), 2) // stays positive after -1 => no set-level change
	old.Add(relation.T(2, 2), 1) // drops to 0 => set-level delete
	d := NewRel("R")
	d.Add(relation.T(1, 1), -1)
	d.Add(relation.T(2, 2), -1)
	d.Add(relation.T(3, 3), 2) // appears => set-level insert
	dd := d.Distinct(old)
	if dd.Count(relation.T(1, 1)) != 0 {
		t.Errorf("no transition for (1,1)")
	}
	if dd.Count(relation.T(2, 2)) != -1 {
		t.Errorf("expected -1 for (2,2), got %d", dd.Count(relation.T(2, 2)))
	}
	if dd.Count(relation.T(3, 3)) != 1 {
		t.Errorf("expected +1 for (3,3), got %d", dd.Count(relation.T(3, 3)))
	}
}

func TestDiff(t *testing.T) {
	s := schemaR(t)
	a := relation.NewBag(s)
	a.Add(relation.T(1, 1), 2)
	a.Add(relation.T(2, 2), 1)
	b := relation.NewBag(s)
	b.Add(relation.T(1, 1), 1)
	b.Add(relation.T(3, 3), 1)
	d := Diff("R", a, b)
	got := a.Clone()
	if err := d.ApplyTo(got, true); err != nil {
		t.Fatalf("diff must be exact: %v", err)
	}
	if !got.Equal(b) {
		t.Fatalf("apply(a, Diff(a,b)) != b")
	}
}

func TestDiffProperty(t *testing.T) {
	s := schemaR(t)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randBag(rng, s, 12)
		b := randBag(rng, s, 12)
		d := Diff("R", a, b)
		got := a.Clone()
		if err := d.ApplyTo(got, true); err != nil {
			return false
		}
		return got.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMultiDelta(t *testing.T) {
	d := New()
	d.Insert("R", relation.T(1, 1))
	d.Delete("S", relation.T(2, 2))
	if got := d.Relations(); len(got) != 2 || got[0] != "R" || got[1] != "S" {
		t.Fatalf("Relations = %v", got)
	}
	if d.IsEmpty() || d.Card() != 2 {
		t.Errorf("card = %d", d.Card())
	}
	c := d.Clone()
	if !c.Equal(d) {
		t.Errorf("clone differs")
	}
	inv := d.Inverse()
	if inv.Rel("R").Count(relation.T(1, 1)) != -1 || inv.Rel("S").Count(relation.T(2, 2)) != 1 {
		t.Errorf("inverse wrong: %s", inv)
	}
	f := d.Filter("R")
	if len(f.Relations()) != 1 || f.Relations()[0] != "R" {
		t.Errorf("filter wrong: %v", f.Relations())
	}
}

func TestMultiDeltaApplyToCatalog(t *testing.T) {
	s := schemaR(t)
	r := relation.NewBag(s)
	d := New()
	d.Insert("R", relation.T(1, 1))
	d.Insert("MISSING", relation.T(2, 2)) // skipped: not in catalog
	if err := d.ApplyTo(map[string]*relation.Relation{"R": r}, true); err != nil {
		t.Fatal(err)
	}
	if r.Card() != 1 {
		t.Errorf("catalog apply failed")
	}
}

func TestMultiSmashAndSmashed(t *testing.T) {
	d1 := New()
	d1.Insert("R", relation.T(1, 1))
	d2 := New()
	d2.Delete("R", relation.T(1, 1))
	d2.Insert("S", relation.T(9, 9))
	out := Smashed(d1, d2, nil)
	if out.Get("R") != nil {
		t.Errorf("R atoms should annihilate")
	}
	if out.Rel("S").Count(relation.T(9, 9)) != 1 {
		t.Errorf("S atom missing")
	}
	// arguments untouched
	if d1.IsEmpty() {
		t.Errorf("Smashed must not mutate inputs")
	}
}

func TestGetPut(t *testing.T) {
	d := New()
	if d.Get("R") != nil {
		t.Errorf("Get on empty must be nil")
	}
	rd := NewRel("R")
	rd.Insert(relation.T(1, 1))
	d.Put(rd)
	if d.Get("R") == nil {
		t.Errorf("Put then Get")
	}
	d.Put(NewRel("R")) // empty replaces => removed
	if d.Get("R") != nil {
		t.Errorf("Put empty should remove")
	}
}

func TestValidate(t *testing.T) {
	d := NewRel("R")
	d.Add(relation.T(1, 1), 2)
	if err := d.Validate(false); err != nil {
		t.Errorf("bag validate: %v", err)
	}
	if err := d.Validate(true); err == nil {
		t.Errorf("set validate must reject count 2")
	}
}

func TestRenamedAndFromRows(t *testing.T) {
	d := FromRows("R", relation.Row{Tuple: relation.T(1, 1), Count: 2})
	r := d.Renamed("R2")
	if r.Rel() != "R2" || r.Count(relation.T(1, 1)) != 2 {
		t.Errorf("renamed wrong")
	}
	if d.Rel() != "R" {
		t.Errorf("original mutated")
	}
}

func TestRelDeltaString(t *testing.T) {
	d := NewRel("R")
	d.Insert(relation.T(1, 2))
	s := d.String()
	if s == "" || d.Rows()[0].Count != 1 {
		t.Errorf("string/rows: %q", s)
	}
	md := New()
	if md.String() != "Δ∅\n" {
		t.Errorf("empty multi delta string: %q", md.String())
	}
}

func TestEachEarlyStop(t *testing.T) {
	d := NewRel("R")
	d.Insert(relation.T(1, 1))
	d.Insert(relation.T(2, 2))
	seen := 0
	d.Each(func(relation.Tuple, int) bool {
		seen++
		return false
	})
	if seen != 1 {
		t.Errorf("Each must stop early: %d", seen)
	}
	md := New()
	md.Add("R", relation.T(3, 3), 2)
	if md.Rel("R").Count(relation.T(3, 3)) != 2 {
		t.Errorf("multi Add")
	}
}
