// Package delta implements the Heraclitus-style delta machinery of §6.2 of
// the paper: deltas as first-class values describing the difference between
// database states, with the apply, smash (!), and inverse operators, plus
// the bag generalization [DHR95] required for VDP nodes that involve
// projection or union.
//
// A RelDelta is a signed multiset over tuples of a single relation: a
// positive count n means n insertion atoms +R(t), a negative count means
// deletion atoms -R(t). The consistency condition of the paper — that a
// delta cannot contain both +R(t) and -R(t) — is structural here: each
// tuple has a single signed count.
//
// A Delta groups RelDeltas for several relations, matching the paper's
// deltas that "simultaneously contain atoms that refer to more than one
// relation".
//
// Like relations, deltas have two physical backends: the columnar Blocks
// backend stores atoms in a relation.TupleMap with signed counts, so
// smash, apply, select, project, and distinct move data column-to-column
// using stored hashes (no tuple materialization, no key strings); the
// Rows backend keeps the original map[string]*entry representation as a
// differential oracle.
package delta

import (
	"fmt"
	"sort"
	"strings"

	"squirrel/internal/relation"
)

// RelDelta is an incremental update to a single relation, represented as a
// signed multiset of tuples.
type RelDelta struct {
	rel     string
	entries map[string]*entry  // Rows backend (nil on Blocks)
	tm      *relation.TupleMap // Blocks backend, lazily sized on first Add
}

type entry struct {
	tuple relation.Tuple
	n     int
}

// NewRel creates an empty delta for the named relation on the
// process-default backend.
func NewRel(rel string) *RelDelta {
	return NewRelWith(rel, relation.DefaultBackend())
}

// NewRelWith creates an empty delta on an explicit backend.
func NewRelWith(rel string, bk relation.Backend) *RelDelta {
	d := &RelDelta{rel: rel}
	if bk == relation.Rows {
		d.entries = make(map[string]*entry)
	}
	return d
}

// blocks reports whether this delta uses the columnar backend.
func (d *RelDelta) blocks() bool { return d.entries == nil }

// lazy returns the columnar store, creating it at the given arity on
// first use (the arity is not known until the first tuple arrives).
func (d *RelDelta) lazy(arity int) *relation.TupleMap {
	if d.tm == nil {
		d.tm = relation.NewTupleMap(arity)
	}
	return d.tm
}

// Rel returns the name of the relation this delta applies to.
func (d *RelDelta) Rel() string { return d.rel }

// Add adjusts the signed count of t by n. Counts that reach zero are
// removed (an insertion and a deletion of the same tuple annihilate, which
// is exactly additive smash at the tuple level).
func (d *RelDelta) Add(t relation.Tuple, n int) {
	if n == 0 {
		return
	}
	if d.blocks() {
		d.lazy(len(t)).Add(t, int64(n), relation.ModeSigned)
		return
	}
	key := t.Key()
	e := d.entries[key]
	if e == nil {
		d.entries[key] = &entry{tuple: t.Clone(), n: n}
		return
	}
	e.n += n
	if e.n == 0 {
		delete(d.entries, key)
	}
}

// setCount forces the signed count of t to n (override semantics).
func (d *RelDelta) setCount(t relation.Tuple, n int) {
	if d.blocks() {
		d.lazy(len(t)).Add(t, int64(n), relation.ModeAssign)
		return
	}
	key := t.Key()
	if n == 0 {
		delete(d.entries, key)
		return
	}
	d.entries[key] = &entry{tuple: t.Clone(), n: n}
}

// Insert records one insertion atom +R(t).
func (d *RelDelta) Insert(t relation.Tuple) { d.Add(t, 1) }

// Delete records one deletion atom -R(t).
func (d *RelDelta) Delete(t relation.Tuple) { d.Add(t, -1) }

// Count returns the signed count of t in the delta.
func (d *RelDelta) Count(t relation.Tuple) int {
	if d.blocks() {
		if d.tm == nil {
			return 0
		}
		return int(d.tm.Get(t))
	}
	if e, ok := d.entries[t.Key()]; ok {
		return e.n
	}
	return 0
}

// IsEmpty reports whether the delta contains no atoms.
func (d *RelDelta) IsEmpty() bool { return d.Len() == 0 }

// Len returns the number of distinct tuples mentioned.
func (d *RelDelta) Len() int {
	if d.blocks() {
		if d.tm == nil {
			return 0
		}
		return d.tm.Len()
	}
	return len(d.entries)
}

// Card returns the total number of atoms (sum of absolute counts).
func (d *RelDelta) Card() int {
	total := 0
	d.Each(func(_ relation.Tuple, n int) bool {
		if n < 0 {
			total -= n
		} else {
			total += n
		}
		return true
	})
	return total
}

// Each iterates over the entries (tuple, signed count); return false to
// stop. Iteration order is unspecified. Tuples handed out are safe to
// retain on every backend.
func (d *RelDelta) Each(fn func(t relation.Tuple, n int) bool) {
	if d.blocks() {
		if d.tm == nil {
			return
		}
		d.tm.Each(func(t relation.Tuple, n int64) bool { return fn(t, int(n)) })
		return
	}
	for _, e := range d.entries {
		if !fn(e.tuple, e.n) {
			return
		}
	}
}

// Rows returns the entries in deterministic (sorted) order with signed
// counts.
func (d *RelDelta) Rows() []relation.Row {
	out := make([]relation.Row, 0, d.Len())
	d.Each(func(t relation.Tuple, n int) bool {
		out = append(out, relation.Row{Tuple: t, Count: n})
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Tuple.Compare(out[j].Tuple) < 0 })
	return out
}

// Insertions returns the tuples with positive counts (the Δ⁺ of the
// paper's difference rules), with their counts.
func (d *RelDelta) Insertions() []relation.Row { return d.signed(1) }

// Deletions returns the tuples with negative counts (Δ⁻), with counts
// reported as positive magnitudes.
func (d *RelDelta) Deletions() []relation.Row {
	return d.signed(-1)
}

func (d *RelDelta) signed(sign int) []relation.Row {
	var out []relation.Row
	d.Each(func(t relation.Tuple, n int) bool {
		if sign > 0 && n > 0 {
			out = append(out, relation.Row{Tuple: t, Count: n})
		}
		if sign < 0 && n < 0 {
			out = append(out, relation.Row{Tuple: t, Count: -n})
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Tuple.Compare(out[j].Tuple) < 0 })
	return out
}

// Clone returns a deep copy.
func (d *RelDelta) Clone() *RelDelta {
	c := &RelDelta{rel: d.rel}
	if d.blocks() {
		if d.tm != nil {
			c.tm = d.tm.Clone()
		}
		return c
	}
	c.entries = make(map[string]*entry, len(d.entries))
	for key, e := range d.entries {
		c.entries[key] = &entry{tuple: e.tuple.Clone(), n: e.n}
	}
	return c
}

// Equal reports whether two deltas contain identical atoms. The backends
// need not match.
func (d *RelDelta) Equal(o *RelDelta) bool {
	if d.Len() != o.Len() {
		return false
	}
	if d.blocks() && o.blocks() {
		if d.tm == nil || o.tm == nil {
			return true // both empty (lengths matched)
		}
		eq := true
		d.tm.EachSlot(func(s int32, n int64) bool {
			if o.tm.GetFrom(d.tm, s) != n {
				eq = false
			}
			return eq
		})
		return eq
	}
	eq := true
	d.Each(func(t relation.Tuple, n int) bool {
		if o.Count(t) != n {
			eq = false
		}
		return eq
	})
	return eq
}

// Inverse returns the delta with all atom signs reversed (the ⁻¹ operator).
// For non-redundant deltas, apply(apply(db, Δ), Δ⁻¹) = db.
func (d *RelDelta) Inverse() *RelDelta {
	c := &RelDelta{rel: d.rel}
	if d.blocks() {
		if d.tm != nil {
			tm := c.lazy(d.tm.Arity())
			d.tm.EachSlot(func(s int32, n int64) bool {
				tm.AddFrom(d.tm, s, -n, relation.ModeSigned)
				return true
			})
		}
		return c
	}
	c.entries = make(map[string]*entry, len(d.entries))
	for key, e := range d.entries {
		c.entries[key] = &entry{tuple: e.tuple.Clone(), n: -e.n}
	}
	return c
}

// Smash combines o into d additively: apply(db, d ! o) =
// apply(apply(db, d), o). This is the bag smash; for set-semantics deltas
// satisfying the paper's non-redundancy assumption it agrees with the
// override smash of [HJ91] under apply (see SmashSet). When both deltas
// are block-backed the combination is vectorized: stored hashes are
// reused and values move column-to-column.
func (d *RelDelta) Smash(o *RelDelta) {
	if d.blocks() && o.blocks() {
		if o.tm == nil {
			return
		}
		tm := d.lazy(o.tm.Arity())
		o.tm.EachSlot(func(s int32, n int64) bool {
			tm.AddFrom(o.tm, s, n, relation.ModeSigned)
			return true
		})
		return
	}
	o.Each(func(t relation.Tuple, n int) bool {
		d.Add(t, n)
		return true
	})
}

// SmashSet combines o into d using the override semantics of [HJ91]: the
// result is the union of the two atom sets with any atom of d that
// conflicts with an atom of o removed (o wins). Counts are clamped to ±1.
func (d *RelDelta) SmashSet(o *RelDelta) {
	if d.blocks() && o.blocks() {
		if o.tm == nil {
			return
		}
		tm := d.lazy(o.tm.Arity())
		o.tm.EachSlot(func(s int32, n int64) bool {
			sign := int64(1)
			if n < 0 {
				sign = -1
			}
			tm.AddFrom(o.tm, s, sign, relation.ModeAssign)
			return true
		})
		return
	}
	o.Each(func(t relation.Tuple, n int) bool {
		sign := 1
		if n < 0 {
			sign = -1
		}
		d.setCount(t, sign)
		return true
	})
}

// ApplyTo applies the delta to rel. In strict mode it returns an error on
// any redundant atom (inserting a tuple already at its maximum multiplicity
// in a set relation, or deleting more occurrences than exist); otherwise
// effects are clamped. The relation name is not checked so that deltas can
// be applied to renamed copies. Block-backed deltas apply slot-wise
// through the relation's columnar store when it has one.
func (d *RelDelta) ApplyTo(rel *relation.Relation, strict bool) error {
	if d.blocks() {
		if d.tm == nil {
			return nil
		}
		var err error
		d.tm.EachSlot(func(s int32, n int64) bool {
			applied := rel.AddSlot(d.tm, s, n)
			if strict && applied != n {
				t := d.tm.AppendTupleAt(nil, s)
				err = fmt.Errorf("delta: redundant atom for %s: tuple %s count %+d applied %+d",
					d.rel, t, n, applied)
			}
			return err == nil
		})
		return err
	}
	for _, e := range d.entries {
		applied, _ := rel.Add(e.tuple, e.n)
		if strict && applied != e.n {
			return fmt.Errorf("delta: redundant atom for %s: tuple %s count %+d applied %+d",
				d.rel, e.tuple, e.n, applied)
		}
	}
	return nil
}

// Project returns a new delta for relation newRel whose tuples are the
// projections of d's tuples onto the given positions, counts preserved
// (bag projection). Projection commutes with apply, as the paper notes.
func (d *RelDelta) Project(newRel string, positions []int) *RelDelta {
	if d.blocks() {
		out := &RelDelta{rel: newRel}
		if d.tm == nil {
			return out
		}
		tm := out.lazy(len(positions))
		d.tm.EachSlot(func(s int32, n int64) bool {
			tm.AddFromProjected(d.tm, s, positions, n, relation.ModeSigned)
			return true
		})
		return out
	}
	out := NewRelWith(newRel, relation.Rows)
	for _, e := range d.entries {
		out.Add(e.tuple.Project(positions), e.n)
	}
	return out
}

// Select returns a new delta containing only the atoms whose tuples
// satisfy pred. Selection commutes with apply. On the columnar backend
// the tuple handed to pred is a scratch buffer reused between calls —
// predicates must not retain it.
func (d *RelDelta) Select(pred func(relation.Tuple) (bool, error)) (*RelDelta, error) {
	if d.blocks() {
		out := &RelDelta{rel: d.rel}
		if d.tm == nil {
			return out, nil
		}
		var scratch relation.Tuple
		var err error
		d.tm.EachSlot(func(s int32, n int64) bool {
			scratch = d.tm.AppendTupleAt(scratch[:0], s)
			ok, e := pred(scratch)
			if e != nil {
				err = e
				return false
			}
			if ok {
				out.lazy(d.tm.Arity()).AddFrom(d.tm, s, n, relation.ModeSigned)
			}
			return true
		})
		if err != nil {
			return nil, err
		}
		return out, nil
	}
	out := NewRelWith(d.rel, relation.Rows)
	for _, e := range d.entries {
		ok, err := pred(e.tuple)
		if err != nil {
			return nil, err
		}
		if ok {
			out.Add(e.tuple, e.n)
		}
	}
	return out, nil
}

// Renamed returns a copy of the delta targeting a different relation name.
func (d *RelDelta) Renamed(rel string) *RelDelta {
	c := d.Clone()
	c.rel = rel
	return c
}

// Distinct converts a bag-level delta into the set-level ("distinct")
// delta it induces, given the relation state old that d is about to be
// applied to: a tuple contributes +1 if its multiplicity transitions
// 0 -> positive and -1 if it transitions positive -> 0. This is how bag
// nodes feed set nodes (difference nodes) in a VDP.
func (d *RelDelta) Distinct(old *relation.Relation) *RelDelta {
	if d.blocks() {
		out := &RelDelta{rel: d.rel}
		if d.tm == nil {
			return out
		}
		oldTM := old.Blockmap()
		var scratch relation.Tuple
		d.tm.EachSlot(func(s int32, n int64) bool {
			var before int64
			if oldTM != nil {
				before = oldTM.GetFrom(d.tm, s)
			} else {
				scratch = d.tm.AppendTupleAt(scratch[:0], s)
				before = int64(old.Count(scratch))
			}
			after := before + n
			if after < 0 {
				after = 0
			}
			switch {
			case before == 0 && after > 0:
				out.lazy(d.tm.Arity()).AddFrom(d.tm, s, 1, relation.ModeSigned)
			case before > 0 && after == 0:
				out.lazy(d.tm.Arity()).AddFrom(d.tm, s, -1, relation.ModeSigned)
			}
			return true
		})
		return out
	}
	out := NewRelWith(d.rel, relation.Rows)
	for _, e := range d.entries {
		before := old.Count(e.tuple)
		after := before + e.n
		if after < 0 {
			after = 0
		}
		switch {
		case before == 0 && after > 0:
			out.Add(e.tuple, 1)
		case before > 0 && after == 0:
			out.Add(e.tuple, -1)
		}
	}
	return out
}

// String renders the delta deterministically: one atom group per line with
// explicit signs.
func (d *RelDelta) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Δ%s [%d atoms]\n", d.rel, d.Card())
	for _, r := range d.Rows() {
		fmt.Fprintf(&b, "  %+d %s\n", r.Count, r.Tuple)
	}
	return b.String()
}

// Diff computes the delta that transforms relation a into relation b
// (tuple counts in b minus counts in a). Both must share a schema shape.
// Vectorized when a, b, and the default backend are all columnar.
func Diff(rel string, a, b *relation.Relation) *RelDelta {
	out := NewRel(rel)
	atm, btm := a.Blockmap(), b.Blockmap()
	if out.blocks() && atm != nil && btm != nil {
		tm := out.lazy(atm.Arity())
		atm.EachSlot(func(s int32, n int64) bool {
			tm.AddFrom(atm, s, -n, relation.ModeSigned)
			return true
		})
		btm.EachSlot(func(s int32, n int64) bool {
			tm.AddFrom(btm, s, n, relation.ModeSigned)
			return true
		})
		return out
	}
	a.Each(func(t relation.Tuple, n int) bool {
		out.Add(t, -n)
		return true
	})
	b.Each(func(t relation.Tuple, n int) bool {
		out.Add(t, n)
		return true
	})
	return out
}
