// Package delta implements the Heraclitus-style delta machinery of §6.2 of
// the paper: deltas as first-class values describing the difference between
// database states, with the apply, smash (!), and inverse operators, plus
// the bag generalization [DHR95] required for VDP nodes that involve
// projection or union.
//
// A RelDelta is a signed multiset over tuples of a single relation: a
// positive count n means n insertion atoms +R(t), a negative count means
// deletion atoms -R(t). The consistency condition of the paper — that a
// delta cannot contain both +R(t) and -R(t) — is structural here: each
// tuple has a single signed count.
//
// A Delta groups RelDeltas for several relations, matching the paper's
// deltas that "simultaneously contain atoms that refer to more than one
// relation".
package delta

import (
	"fmt"
	"sort"
	"strings"

	"squirrel/internal/relation"
)

// RelDelta is an incremental update to a single relation, represented as a
// signed multiset of tuples.
type RelDelta struct {
	rel     string
	entries map[string]*entry
}

type entry struct {
	tuple relation.Tuple
	n     int
}

// NewRel creates an empty delta for the named relation.
func NewRel(rel string) *RelDelta {
	return &RelDelta{rel: rel, entries: make(map[string]*entry)}
}

// Rel returns the name of the relation this delta applies to.
func (d *RelDelta) Rel() string { return d.rel }

// Add adjusts the signed count of t by n. Counts that reach zero are
// removed (an insertion and a deletion of the same tuple annihilate, which
// is exactly additive smash at the tuple level).
func (d *RelDelta) Add(t relation.Tuple, n int) {
	if n == 0 {
		return
	}
	key := t.Key()
	e := d.entries[key]
	if e == nil {
		d.entries[key] = &entry{tuple: t.Clone(), n: n}
		return
	}
	e.n += n
	if e.n == 0 {
		delete(d.entries, key)
	}
}

// Insert records one insertion atom +R(t).
func (d *RelDelta) Insert(t relation.Tuple) { d.Add(t, 1) }

// Delete records one deletion atom -R(t).
func (d *RelDelta) Delete(t relation.Tuple) { d.Add(t, -1) }

// Count returns the signed count of t in the delta.
func (d *RelDelta) Count(t relation.Tuple) int {
	if e, ok := d.entries[t.Key()]; ok {
		return e.n
	}
	return 0
}

// IsEmpty reports whether the delta contains no atoms.
func (d *RelDelta) IsEmpty() bool { return len(d.entries) == 0 }

// Len returns the number of distinct tuples mentioned.
func (d *RelDelta) Len() int { return len(d.entries) }

// Card returns the total number of atoms (sum of absolute counts).
func (d *RelDelta) Card() int {
	total := 0
	for _, e := range d.entries {
		if e.n < 0 {
			total -= e.n
		} else {
			total += e.n
		}
	}
	return total
}

// Each iterates over the entries (tuple, signed count); return false to
// stop. Iteration order is unspecified.
func (d *RelDelta) Each(fn func(t relation.Tuple, n int) bool) {
	for _, e := range d.entries {
		if !fn(e.tuple, e.n) {
			return
		}
	}
}

// Rows returns the entries in deterministic (sorted) order with signed
// counts.
func (d *RelDelta) Rows() []relation.Row {
	out := make([]relation.Row, 0, len(d.entries))
	for _, e := range d.entries {
		out = append(out, relation.Row{Tuple: e.tuple, Count: e.n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tuple.Compare(out[j].Tuple) < 0 })
	return out
}

// Insertions returns the tuples with positive counts (the Δ⁺ of the
// paper's difference rules), with their counts.
func (d *RelDelta) Insertions() []relation.Row { return d.signed(1) }

// Deletions returns the tuples with negative counts (Δ⁻), with counts
// reported as positive magnitudes.
func (d *RelDelta) Deletions() []relation.Row { return d.signed(-1) }

func (d *RelDelta) signed(sign int) []relation.Row {
	var out []relation.Row
	for _, e := range d.entries {
		if sign > 0 && e.n > 0 {
			out = append(out, relation.Row{Tuple: e.tuple, Count: e.n})
		}
		if sign < 0 && e.n < 0 {
			out = append(out, relation.Row{Tuple: e.tuple, Count: -e.n})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tuple.Compare(out[j].Tuple) < 0 })
	return out
}

// Clone returns a deep copy.
func (d *RelDelta) Clone() *RelDelta {
	c := NewRel(d.rel)
	for key, e := range d.entries {
		c.entries[key] = &entry{tuple: e.tuple.Clone(), n: e.n}
	}
	return c
}

// Equal reports whether two deltas contain identical atoms.
func (d *RelDelta) Equal(o *RelDelta) bool {
	if len(d.entries) != len(o.entries) {
		return false
	}
	for key, e := range d.entries {
		oe, ok := o.entries[key]
		if !ok || oe.n != e.n {
			return false
		}
	}
	return true
}

// Inverse returns the delta with all atom signs reversed (the ⁻¹ operator).
// For non-redundant deltas, apply(apply(db, Δ), Δ⁻¹) = db.
func (d *RelDelta) Inverse() *RelDelta {
	c := NewRel(d.rel)
	for key, e := range d.entries {
		c.entries[key] = &entry{tuple: e.tuple.Clone(), n: -e.n}
	}
	return c
}

// Smash combines o into d additively: apply(db, d ! o) =
// apply(apply(db, d), o). This is the bag smash; for set-semantics deltas
// satisfying the paper's non-redundancy assumption it agrees with the
// override smash of [HJ91] under apply (see SmashSet).
func (d *RelDelta) Smash(o *RelDelta) {
	for _, e := range o.entries {
		d.Add(e.tuple, e.n)
	}
}

// SmashSet combines o into d using the override semantics of [HJ91]: the
// result is the union of the two atom sets with any atom of d that
// conflicts with an atom of o removed (o wins). Counts are clamped to ±1.
func (d *RelDelta) SmashSet(o *RelDelta) {
	for key, oe := range o.entries {
		sign := 1
		if oe.n < 0 {
			sign = -1
		}
		d.entries[key] = &entry{tuple: oe.tuple.Clone(), n: sign}
	}
}

// ApplyTo applies the delta to rel. In strict mode it returns an error on
// any redundant atom (inserting a tuple already at its maximum multiplicity
// in a set relation, or deleting more occurrences than exist); otherwise
// effects are clamped. The relation name is not checked so that deltas can
// be applied to renamed copies.
func (d *RelDelta) ApplyTo(rel *relation.Relation, strict bool) error {
	for _, e := range d.entries {
		applied, _ := rel.Add(e.tuple, e.n)
		if strict && applied != e.n {
			return fmt.Errorf("delta: redundant atom for %s: tuple %s count %+d applied %+d",
				d.rel, e.tuple, e.n, applied)
		}
	}
	return nil
}

// Project returns a new delta for relation newRel whose tuples are the
// projections of d's tuples onto the given positions, counts preserved
// (bag projection). Projection commutes with apply, as the paper notes.
func (d *RelDelta) Project(newRel string, positions []int) *RelDelta {
	out := NewRel(newRel)
	for _, e := range d.entries {
		out.Add(e.tuple.Project(positions), e.n)
	}
	return out
}

// Select returns a new delta containing only the atoms whose tuples
// satisfy pred. Selection commutes with apply.
func (d *RelDelta) Select(pred func(relation.Tuple) (bool, error)) (*RelDelta, error) {
	out := NewRel(d.rel)
	for _, e := range d.entries {
		ok, err := pred(e.tuple)
		if err != nil {
			return nil, err
		}
		if ok {
			out.Add(e.tuple, e.n)
		}
	}
	return out, nil
}

// Renamed returns a copy of the delta targeting a different relation name.
func (d *RelDelta) Renamed(rel string) *RelDelta {
	c := d.Clone()
	c.rel = rel
	return c
}

// Distinct converts a bag-level delta into the set-level ("distinct")
// delta it induces, given the relation state old that d is about to be
// applied to: a tuple contributes +1 if its multiplicity transitions
// 0 -> positive and -1 if it transitions positive -> 0. This is how bag
// nodes feed set nodes (difference nodes) in a VDP.
func (d *RelDelta) Distinct(old *relation.Relation) *RelDelta {
	out := NewRel(d.rel)
	for _, e := range d.entries {
		before := old.Count(e.tuple)
		after := before + e.n
		if after < 0 {
			after = 0
		}
		switch {
		case before == 0 && after > 0:
			out.Add(e.tuple, 1)
		case before > 0 && after == 0:
			out.Add(e.tuple, -1)
		}
	}
	return out
}

// String renders the delta deterministically: one atom group per line with
// explicit signs.
func (d *RelDelta) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Δ%s [%d atoms]\n", d.rel, d.Card())
	for _, r := range d.Rows() {
		fmt.Fprintf(&b, "  %+d %s\n", r.Count, r.Tuple)
	}
	return b.String()
}

// Diff computes the delta that transforms relation a into relation b
// (tuple counts in b minus counts in a). Both must share a schema shape.
func Diff(rel string, a, b *relation.Relation) *RelDelta {
	out := NewRel(rel)
	a.Each(func(t relation.Tuple, n int) bool {
		out.Add(t, -n)
		return true
	})
	b.Each(func(t relation.Tuple, n int) bool {
		out.Add(t, n)
		return true
	})
	return out
}
