package delta

import (
	"testing"

	"squirrel/internal/relation"
)

// These tests pin down the edge cases of coalescing several announced
// deltas into one combined delta before kernel propagation (the smash of
// a queued announcement prefix): annihilation, updates expressed as
// delete+insert, and duplicate announcements netting out.

func TestCoalesceInsertThenDelete(t *testing.T) {
	// Source txn 1 inserts a tuple, txn 2 deletes it. The smash must
	// annihilate entirely: no atoms, Relations() must not list the shell,
	// and Compact must remove the empty per-relation entry.
	a := New()
	a.Insert("R", relation.T(1, 2))
	b := New()
	b.Delete("R", relation.T(1, 2))

	combined := Smashed(a, b)
	if !combined.IsEmpty() {
		t.Fatalf("insert-then-delete should annihilate, got:\n%s", combined)
	}
	if rels := combined.Relations(); len(rels) != 0 {
		t.Fatalf("Relations() lists annihilated relation: %v", rels)
	}
	if combined.Get("R") != nil {
		t.Fatalf("Get(R) returned a fully-cancelled delta")
	}
	// The empty shell exists internally until Compact removes it.
	combined.Compact()
	if _, ok := combined.rels["R"]; ok {
		t.Fatalf("Compact left the empty RelDelta shell")
	}
	if combined.Compact() != combined {
		t.Fatalf("Compact must return its receiver for chaining")
	}
}

func TestCoalesceDeleteThenInsertIsUpdate(t *testing.T) {
	// An update announced as -R(old) then +R(new) must coalesce to a
	// two-atom delta carrying both halves, not cancel.
	old := relation.T(1, 10)
	new_ := relation.T(1, 20)
	a := New()
	a.Delete("R", old)
	b := New()
	b.Insert("R", new_)

	combined := Smashed(a, b)
	rd := combined.Get("R")
	if rd == nil {
		t.Fatalf("update coalesced to nothing")
	}
	if rd.Count(old) != -1 || rd.Count(new_) != 1 {
		t.Fatalf("want -1 old / +1 new, got %d / %d:\n%s",
			rd.Count(old), rd.Count(new_), rd)
	}
	if rd.Card() != 2 {
		t.Fatalf("Card = %d, want 2", rd.Card())
	}

	// Applying the coalesced delta performs the in-place update.
	s := relation.MustSchema("R",
		[]relation.Attribute{{Name: "a", Type: relation.KindInt}, {Name: "b", Type: relation.KindInt}}, "a")
	r := relation.NewBag(s)
	r.Add(old, 1)
	if err := rd.ApplyTo(r, true); err != nil {
		t.Fatal(err)
	}
	if r.Count(old) != 0 || r.Count(new_) != 1 || r.Len() != 1 {
		t.Fatalf("apply of coalesced update wrong: %v", r)
	}
}

func TestCoalesceDuplicateAnnouncementsNetOut(t *testing.T) {
	// Two sources announcing opposing deltas for different relations of
	// the same combined delta: the R atoms net to a no-op while the S
	// atoms survive, so the coalesced delta touches only S.
	a := New()
	a.Add("R", relation.T(7, 7), 2)
	a.Insert("S", relation.T(3))
	b := New()
	b.Add("R", relation.T(7, 7), -2)
	b.Insert("S", relation.T(4))

	combined := Smashed(a, b).Compact()
	if rels := combined.Relations(); len(rels) != 1 || rels[0] != "S" {
		t.Fatalf("Relations() = %v, want [S]", combined.Relations())
	}
	if combined.Get("R") != nil {
		t.Fatalf("netted-out relation still reachable via Get")
	}
	sd := combined.Get("S")
	if sd == nil || sd.Count(relation.T(3)) != 1 || sd.Count(relation.T(4)) != 1 {
		t.Fatalf("surviving S atoms wrong:\n%s", combined)
	}
	// Smashing never mutated the inputs.
	if a.Card() != 3 || b.Card() != 3 {
		t.Fatalf("Smashed mutated its arguments: a=%d b=%d atoms", a.Card(), b.Card())
	}
}

func TestCoalesceEmptyStillWellFormed(t *testing.T) {
	// A queue whose announcements fully cancel produces an empty combined
	// delta; the core commits it anyway (ref′ advances). The delta value
	// must behave like a genuine empty delta everywhere.
	a := New()
	a.Insert("R", relation.T(9, 9))
	combined := Smashed(a, a.Inverse()).Compact()
	if !combined.IsEmpty() || combined.Card() != 0 {
		t.Fatalf("want empty, got:\n%s", combined)
	}
	if got := combined.String(); got != "Δ∅\n" {
		t.Fatalf("empty rendering = %q", got)
	}
	if !combined.Equal(New()) {
		t.Fatalf("empty coalesced delta != New()")
	}
}
