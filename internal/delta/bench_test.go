package delta

import (
	"fmt"
	"math/rand"
	"testing"

	"squirrel/internal/relation"
)

// Microbenchmarks for the three hot delta kernels (smash, apply,
// select-project), run against both backends so the columnar speedup is
// measured in isolation from the mediator stack (EXPERIMENTS.md E19
// records the end-to-end numbers).

func benchSchema(width int) *relation.Schema {
	attrs := make([]relation.Attribute, width)
	attrs[0] = relation.Attribute{Name: "k", Type: relation.KindInt}
	attrs[1] = relation.Attribute{Name: "s", Type: relation.KindString}
	for i := 2; i < width; i++ {
		attrs[i] = relation.Attribute{Name: fmt.Sprintf("a%d", i), Type: relation.KindInt}
	}
	return relation.MustSchema("B", attrs)
}

func benchDelta(bk relation.Backend, n, keyspace int, seed int64) *RelDelta {
	rng := rand.New(rand.NewSource(seed))
	d := NewRelWith("B", bk)
	for i := 0; i < n; i++ {
		d.Add(relation.T(rng.Intn(keyspace), fmt.Sprintf("s%d", rng.Intn(64)), rng.Intn(1000), rng.Intn(1000)), rng.Intn(5)-2)
	}
	return d
}

func forEachBackendB(b *testing.B, fn func(b *testing.B, bk relation.Backend)) {
	for _, bk := range []relation.Backend{relation.Rows, relation.Blocks} {
		b.Run("backend="+bk.String(), func(b *testing.B) { fn(b, bk) })
	}
}

func BenchmarkDeltaSmash(b *testing.B) {
	forEachBackendB(b, func(b *testing.B, bk relation.Backend) {
		base := benchDelta(bk, 4096, 1<<16, 1)
		inc := benchDelta(bk, 4096, 1<<16, 2)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d := base.Clone()
			d.Smash(inc)
		}
	})
}

func BenchmarkDeltaSmashSet(b *testing.B) {
	forEachBackendB(b, func(b *testing.B, bk relation.Backend) {
		base := benchDelta(bk, 4096, 1<<16, 1)
		inc := benchDelta(bk, 4096, 1<<16, 2)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d := base.Clone()
			d.SmashSet(inc)
		}
	})
}

func BenchmarkApplyTo(b *testing.B) {
	schema := benchSchema(4)
	forEachBackendB(b, func(b *testing.B, bk relation.Backend) {
		store := relation.NewWith(schema, relation.Bag, bk)
		seedDelta := benchDelta(bk, 8192, 1<<16, 3)
		seedDelta.Each(func(t relation.Tuple, n int) bool {
			if n < 0 {
				n = -n
			}
			store.Add(t, n+1)
			return true
		})
		inc := benchDelta(bk, 4096, 1<<16, 4)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			work := store.Clone()
			if err := inc.ApplyTo(work, false); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkDeltaProject(b *testing.B) {
	forEachBackendB(b, func(b *testing.B, bk relation.Backend) {
		d := benchDelta(bk, 8192, 1<<16, 5)
		positions := []int{0, 2}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d.Project("P", positions)
		}
	})
}

func BenchmarkDeltaSelect(b *testing.B) {
	forEachBackendB(b, func(b *testing.B, bk relation.Backend) {
		d := benchDelta(bk, 8192, 1<<16, 6)
		pred := func(t relation.Tuple) (bool, error) { return t[2].AsInt() < 500, nil }
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := d.Select(pred); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRelationClone isolates the copy-on-write clone cost that
// dominates staged-kernel setup for large stores.
func BenchmarkRelationClone(b *testing.B) {
	schema := benchSchema(4)
	forEachBackendB(b, func(b *testing.B, bk relation.Backend) {
		store := relation.NewWith(schema, relation.Bag, bk)
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 20000; i++ {
			store.Add(relation.T(i, fmt.Sprintf("s%d", rng.Intn(64)), rng.Intn(1000), rng.Intn(1000)), 1)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			store.Clone()
		}
	})
}
