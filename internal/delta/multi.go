package delta

import (
	"fmt"
	"sort"
	"strings"

	"squirrel/internal/relation"
)

// Delta is a multi-relation delta: a collection of RelDeltas keyed by
// relation name. It corresponds to the paper's deltas that may contain
// atoms referring to more than one relation — e.g. the net update a source
// database announces for one of its transactions.
type Delta struct {
	rels map[string]*RelDelta
}

// New creates an empty multi-relation delta.
func New() *Delta {
	return &Delta{rels: make(map[string]*RelDelta)}
}

// Rel returns the per-relation delta for rel, creating it if absent.
func (d *Delta) Rel(rel string) *RelDelta {
	rd := d.rels[rel]
	if rd == nil {
		rd = NewRel(rel)
		d.rels[rel] = rd
	}
	return rd
}

// Get returns the per-relation delta for rel, or nil if the delta has no
// atoms for it.
func (d *Delta) Get(rel string) *RelDelta {
	rd := d.rels[rel]
	if rd == nil || rd.IsEmpty() {
		return nil
	}
	return rd
}

// Put installs rd (replacing any existing delta for the same relation).
// Empty deltas are dropped.
func (d *Delta) Put(rd *RelDelta) {
	if rd == nil || rd.IsEmpty() {
		delete(d.rels, rd.Rel())
		return
	}
	d.rels[rd.Rel()] = rd
}

// Insert records an insertion atom +rel(t).
func (d *Delta) Insert(rel string, t relation.Tuple) { d.Rel(rel).Insert(t) }

// Delete records a deletion atom -rel(t).
func (d *Delta) Delete(rel string, t relation.Tuple) { d.Rel(rel).Delete(t) }

// Add adjusts the signed count of t in rel by n.
func (d *Delta) Add(rel string, t relation.Tuple, n int) { d.Rel(rel).Add(t, n) }

// Relations returns the sorted names of relations with at least one atom.
func (d *Delta) Relations() []string {
	out := make([]string, 0, len(d.rels))
	for name, rd := range d.rels {
		if !rd.IsEmpty() {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// IsEmpty reports whether the delta has no atoms at all.
func (d *Delta) IsEmpty() bool {
	for _, rd := range d.rels {
		if !rd.IsEmpty() {
			return false
		}
	}
	return true
}

// Card returns the total atom count across relations.
func (d *Delta) Card() int {
	total := 0
	for _, rd := range d.rels {
		total += rd.Card()
	}
	return total
}

// Clone returns a deep copy.
func (d *Delta) Clone() *Delta {
	c := New()
	for name, rd := range d.rels {
		if !rd.IsEmpty() {
			c.rels[name] = rd.Clone()
		}
	}
	return c
}

// Equal reports whether two deltas contain identical atoms.
func (d *Delta) Equal(o *Delta) bool {
	names := d.Relations()
	onames := o.Relations()
	if len(names) != len(onames) {
		return false
	}
	for i, n := range names {
		if n != onames[i] || !d.rels[n].Equal(o.rels[n]) {
			return false
		}
	}
	return true
}

// Compact drops per-relation deltas whose atoms have fully annihilated
// (an insert-then-delete of the same tuple smashes to a zero count and
// vanishes entry by entry; Compact removes the empty shell that remains).
// Coalescing a queue of announcements can legitimately net out to an
// empty delta — the transaction still commits and advances ref′, it just
// propagates nothing. Returns d for chaining.
func (d *Delta) Compact() *Delta {
	for name, rd := range d.rels {
		if rd.IsEmpty() {
			delete(d.rels, name)
		}
	}
	return d
}

// Smash combines o into d (additively, per relation): apply(db, d ! o) =
// apply(apply(db, d), o).
func (d *Delta) Smash(o *Delta) {
	for name, rd := range o.rels {
		if rd.IsEmpty() {
			continue
		}
		d.Rel(name).Smash(rd)
	}
}

// Inverse returns the delta with all atoms sign-reversed; note
// (Δ1!Δ2)⁻¹ = Δ2⁻¹!Δ1⁻¹ as the paper observes (for additive smash the
// order is immaterial).
func (d *Delta) Inverse() *Delta {
	c := New()
	for name, rd := range d.rels {
		if !rd.IsEmpty() {
			c.rels[name] = rd.Inverse()
		}
	}
	return c
}

// Filter returns a new delta retaining only atoms for the named relations.
func (d *Delta) Filter(rels ...string) *Delta {
	keep := make(map[string]bool, len(rels))
	for _, r := range rels {
		keep[r] = true
	}
	c := New()
	for name, rd := range d.rels {
		if keep[name] && !rd.IsEmpty() {
			c.rels[name] = rd.Clone()
		}
	}
	return c
}

// ApplyTo applies every per-relation delta to the matching relation in the
// catalog (a map from relation name to instance). Relations not present in
// the catalog are skipped (they belong to other consumers). strict has the
// same meaning as RelDelta.ApplyTo.
func (d *Delta) ApplyTo(catalog map[string]*relation.Relation, strict bool) error {
	for name, rd := range d.rels {
		rel, ok := catalog[name]
		if !ok {
			continue
		}
		if err := rd.ApplyTo(rel, strict); err != nil {
			return err
		}
	}
	return nil
}

// String renders the delta deterministically.
func (d *Delta) String() string {
	var b strings.Builder
	names := d.Relations()
	if len(names) == 0 {
		return "Δ∅\n"
	}
	for _, name := range names {
		b.WriteString(d.rels[name].String())
	}
	return b.String()
}

// Smashed returns the smash d1 ! d2 ! ... of the given deltas as a new
// value, leaving the arguments untouched.
func Smashed(ds ...*Delta) *Delta {
	out := New()
	for _, d := range ds {
		if d != nil {
			out.Smash(d)
		}
	}
	return out
}

// FromRows builds a RelDelta from explicit signed rows; convenient in
// tests.
func FromRows(rel string, rows ...relation.Row) *RelDelta {
	d := NewRel(rel)
	for _, r := range rows {
		d.Add(r.Tuple, r.Count)
	}
	return d
}

// Validate checks the structural consistency condition: no tuple may carry
// a zero count (impossible by construction) and, in set mode, counts must
// be ±1. Returns the first violation found.
func (d *RelDelta) Validate(set bool) error {
	var err error
	d.Each(func(t relation.Tuple, n int) bool {
		if n == 0 {
			err = fmt.Errorf("delta: zero-count atom for %s tuple %s", d.rel, t)
		} else if set && n != 1 && n != -1 {
			err = fmt.Errorf("delta: set-semantics delta for %s has count %d for tuple %s", d.rel, n, t)
		}
		return err == nil
	})
	return err
}
