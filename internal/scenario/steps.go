package scenario

import (
	"fmt"
	"strings"

	"squirrel/internal/clock"
	"squirrel/internal/relation"
	"squirrel/internal/sqlview"
	"squirrel/internal/vdp"
)

// statNames is the closed vocabulary of assert.stats counters, mapped
// onto core.Stats by the runner.
var statNames = map[string]bool{
	"update_txns": true, "query_txns": true, "atoms_propagated": true,
	"source_polls": true, "tuples_polled": true, "temps_built": true,
	"queue_high_water": true, "current_version": true, "versions_published": true,
	"poll_failures": true, "poll_retries": true, "degraded_queries": true,
	"gaps_detected": true, "resyncs": true, "annotation_switches": true,
	"update_txn_retries": true, "active_subscribers": true, "sub_frames": true,
	"sub_coalesces": true, "sub_lag_drops": true, "sub_resyncs": true,
}

func bindTimeline(n *node, spec *Spec) error {
	list, err := n.asList()
	if err != nil {
		return err
	}
	if len(list) == 0 {
		return errAt(n.line, "timeline is empty")
	}
	for _, item := range list {
		step, err := bindStep(item, spec)
		if err != nil {
			return err
		}
		spec.Steps = append(spec.Steps, step)
	}
	return nil
}

func bindStep(n *node, spec *Spec) (Step, error) {
	// Bare-scalar steps: "- flush".
	if n.kind == kindScalar {
		if n.scalar == "flush" && !n.quoted {
			return Step{Line: n.line, Kind: "flush"}, nil
		}
		return Step{}, errAt(n.line, "unknown step %q (bare steps: flush)", n.scalar)
	}
	m, err := n.asMap()
	if err != nil {
		return Step{}, err
	}
	if len(m.keys) != 1 {
		return Step{}, errAt(n.line, "a step is a single-key mapping (e.g. 'advance: 100'), got %d keys", len(m.keys))
	}
	kind := m.keys[0]
	body := m.vals[kind]
	st := Step{Line: n.line, Kind: kind}
	switch kind {
	case "advance":
		v, err := body.asInt()
		if err != nil {
			return st, err
		}
		if v <= 0 {
			return st, errAt(body.line, "advance must be > 0")
		}
		st.Advance = clock.Time(v)
	case "commit":
		c, err := bindCommit(body, spec)
		if err != nil {
			return st, err
		}
		st.Commit = c
	case "burst":
		bu, err := bindBurst(body, spec)
		if err != nil {
			return st, err
		}
		st.Burst = bu
	case "flush":
		// "flush: true" tolerated alongside bare "- flush".
		if _, err := body.asBool(); err != nil {
			return st, errAt(body.line, "flush takes no payload (write '- flush')")
		}
	case "query":
		q, err := bindQuery(body, spec)
		if err != nil {
			return st, err
		}
		st.Query = q
	case "crash", "restore", "resync":
		src, err := body.asString()
		if err != nil {
			return st, err
		}
		if !spec.hasFaultTarget(src) {
			return st, errAt(body.line, "%s: unknown source %q", kind, src)
		}
		st.Source = src
	case "hang":
		b, err := bindMap(body)
		if err != nil {
			return st, err
		}
		h := &HangStep{}
		sn, err := b.need("source")
		if err != nil {
			return st, err
		}
		if h.Source, err = sn.asString(); err != nil {
			return st, err
		}
		if !spec.hasFaultTarget(h.Source) {
			return st, errAt(sn.line, "hang: unknown source %q", h.Source)
		}
		tn, err := b.need("ticks")
		if err != nil {
			return st, err
		}
		tv, err := tn.asInt()
		if err != nil {
			return st, err
		}
		if tv <= 0 {
			return st, errAt(tn.line, "hang ticks must be > 0")
		}
		h.Ticks = clock.Time(tv)
		if err := b.finish("hang"); err != nil {
			return st, err
		}
		st.Hang = h
	case "drop_announcements":
		b, err := bindMap(body)
		if err != nil {
			return st, err
		}
		d := &DropStep{}
		sn, err := b.need("source")
		if err != nil {
			return st, err
		}
		if d.Source, err = sn.asString(); err != nil {
			return st, err
		}
		if !spec.hasFaultTarget(d.Source) {
			return st, errAt(sn.line, "drop_announcements: unknown source %q", d.Source)
		}
		cn, err := b.need("count")
		if err != nil {
			return st, err
		}
		cv, err := cn.asInt()
		if err != nil {
			return st, err
		}
		if cv <= 0 {
			return st, errAt(cn.line, "count must be > 0")
		}
		d.Count = int(cv)
		if err := b.finish("drop_announcements"); err != nil {
			return st, err
		}
		st.Drop = d
	case "reannotate":
		// Either one annotation mapping or a list of them.
		if body.kind == kindList {
			items, _ := body.asList()
			for _, it := range items {
				a, err := bindAnn(it)
				if err != nil {
					return st, err
				}
				st.Reannotate = append(st.Reannotate, a)
			}
		} else {
			a, err := bindAnn(body)
			if err != nil {
				return st, err
			}
			st.Reannotate = []AnnSpec{a}
		}
	case "subscribe":
		sub, err := bindSubscribe(body)
		if err != nil {
			return st, err
		}
		st.Subscribe = sub
	case "drain":
		d, err := bindDrain(body)
		if err != nil {
			return st, err
		}
		st.Drain = d
	case "unsubscribe":
		s, err := body.asString()
		if err != nil {
			return st, err
		}
		st.Sub = s
	case "note":
		s, err := body.asString()
		if err != nil {
			return st, err
		}
		st.Note = s
	case "assert":
		a, err := bindAssert(body, spec)
		if err != nil {
			return st, err
		}
		st.Assert = a
	default:
		return st, errAt(n.line, "unknown step %q", kind)
	}
	return st, nil
}

func (s *Spec) hasSource(name string) bool {
	for _, src := range s.Sources {
		if src.Name == name {
			return true
		}
	}
	return false
}

// Tiered reports whether the scenario declares a federation (mediators
// between the leaf sources and the top-level views).
func (s *Spec) Tiered() bool { return len(s.Mediators) > 0 }

func (s *Spec) hasMediator(name string) bool {
	for _, m := range s.Mediators {
		if m.Name == name {
			return true
		}
	}
	return false
}

// hasFaultTarget accepts anything crash/restore/hang/drop steps may
// name: a leaf source or (in a tiered scenario) a mediator tier.
func (s *Spec) hasFaultTarget(name string) bool {
	return s.hasSource(name) || s.hasMediator(name)
}

// relSpec resolves (source, relation) to the declared relation spec.
func (s *Spec) relSpec(src, rel string) *RelSpec {
	for i := range s.Sources {
		if s.Sources[i].Name != src {
			continue
		}
		for j := range s.Sources[i].Relations {
			if s.Sources[i].Relations[j].Name == rel {
				return &s.Sources[i].Relations[j]
			}
		}
	}
	return nil
}

func bindCommit(n *node, spec *Spec) (*CommitStep, error) {
	b, err := bindMap(n)
	if err != nil {
		return nil, err
	}
	out := &CommitStep{}
	sn, err := b.need("source")
	if err != nil {
		return nil, err
	}
	if out.Source, err = sn.asString(); err != nil {
		return nil, err
	}
	rn, err := b.need("relation")
	if err != nil {
		return nil, err
	}
	if out.Relation, err = rn.asString(); err != nil {
		return nil, err
	}
	rs := spec.relSpec(out.Source, out.Relation)
	if rs == nil {
		return nil, errAt(sn.line, "commit: source %q has no relation %q", out.Source, out.Relation)
	}
	rows := func(key string) ([]relation.Tuple, error) {
		v := b.get(key)
		if v == nil {
			return nil, nil
		}
		list, err := v.asList()
		if err != nil {
			return nil, err
		}
		var out []relation.Tuple
		for _, row := range list {
			t, err := bindTuple(row, rs.Attrs)
			if err != nil {
				return nil, err
			}
			out = append(out, t)
		}
		return out, nil
	}
	if out.Insert, err = rows("insert"); err != nil {
		return nil, err
	}
	if out.Delete, err = rows("delete"); err != nil {
		return nil, err
	}
	if len(out.Insert) == 0 && len(out.Delete) == 0 {
		return nil, errAt(n.line, "commit has neither insert nor delete rows")
	}
	return out, b.finish("commit")
}

func bindBurst(n *node, spec *Spec) (*BurstStep, error) {
	b, err := bindMap(n)
	if err != nil {
		return nil, err
	}
	out := &BurstStep{}
	sn, err := b.need("source")
	if err != nil {
		return nil, err
	}
	if out.Source, err = sn.asString(); err != nil {
		return nil, err
	}
	rn, err := b.need("relation")
	if err != nil {
		return nil, err
	}
	if out.Relation, err = rn.asString(); err != nil {
		return nil, err
	}
	rs := spec.relSpec(out.Source, out.Relation)
	if rs == nil {
		return nil, errAt(sn.line, "burst: source %q has no relation %q", out.Source, out.Relation)
	}
	cn, err := b.need("count")
	if err != nil {
		return nil, err
	}
	cv, err := cn.asInt()
	if err != nil {
		return nil, err
	}
	if cv <= 0 || cv > 100000 {
		return nil, errAt(cn.line, "burst count must be in 1..100000")
	}
	out.Count = int(cv)
	en, err := b.need("every")
	if err != nil {
		return nil, err
	}
	ev, err := en.asInt()
	if err != nil {
		return nil, err
	}
	if ev <= 0 {
		return nil, errAt(en.line, "burst every must be > 0 ticks")
	}
	out.Every = clock.Time(ev)
	rows := func(key string) ([]burstRow, error) {
		v := b.get(key)
		if v == nil {
			return nil, nil
		}
		list, err := v.asList()
		if err != nil {
			return nil, err
		}
		var rows []burstRow
		for _, rowNode := range list {
			row, err := bindBurstRow(rowNode, rs.Attrs)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
		return rows, nil
	}
	if out.Insert, err = rows("insert"); err != nil {
		return nil, err
	}
	if out.Delete, err = rows("delete"); err != nil {
		return nil, err
	}
	if len(out.Insert) == 0 && len(out.Delete) == 0 {
		return nil, errAt(n.line, "burst has neither insert nor delete rows")
	}
	return out, b.finish("burst")
}

// bindBurstRow parses a templated row: numeric cells given as strings are
// expressions over the burst index i; string cells substitute "{i}".
func bindBurstRow(n *node, attrs []AttrSpec) (burstRow, error) {
	cells, err := n.asList()
	if err != nil {
		return nil, err
	}
	if len(cells) != len(attrs) {
		return nil, errAt(n.line, "row has %d cells, schema has %d attributes", len(cells), len(attrs))
	}
	out := make(burstRow, len(cells))
	for i, c := range cells {
		attr := attrs[i]
		if c.kind != kindScalar {
			return nil, errAt(c.line, "cell for %s must be a scalar", attr.Name)
		}
		numeric := attr.Kind == relation.KindInt || attr.Kind == relation.KindFloat
		if numeric && looksTemplated(c) {
			expr, err := sqlview.ParseExpr(c.scalar)
			if err != nil {
				return nil, errAt(c.line, "cell expression %q: %v", c.scalar, err)
			}
			refs := map[string]bool{}
			expr.CollectAttrs(refs)
			for name := range refs {
				if name != "i" {
					return nil, errAt(c.line, "cell expression may only reference the burst index i, got %q", name)
				}
			}
			out[i] = burstCell{expr: expr, isExpr: true}
			continue
		}
		if attr.Kind == relation.KindString && strings.Contains(c.scalar, "{i}") {
			out[i] = burstCell{strTpl: c.scalar, isTpl: true}
			continue
		}
		v, err := bindValue(c, attr)
		if err != nil {
			return nil, err
		}
		out[i] = burstCell{lit: v}
	}
	return out, nil
}

// looksTemplated reports whether a numeric cell should be parsed as an
// expression: any quoted scalar, or a plain scalar that is not a bare
// number.
func looksTemplated(c *node) bool {
	if c.quoted {
		return true
	}
	return strings.ContainsAny(c.scalar, "i+-*/() ") && c.scalar != "-"
}

// eval instantiates the row for burst index i.
func (r burstRow) eval(i int, attrs []AttrSpec) (relation.Tuple, error) {
	out := make(relation.Tuple, len(r))
	env := burstEnv(i)
	for j, c := range r {
		switch {
		case c.isExpr:
			v, err := c.expr.Eval(env)
			if err != nil {
				return nil, err
			}
			if attrs[j].Kind == relation.KindInt && v.Kind() == relation.KindFloat {
				v = relation.Int(int64(v.AsFloat()))
			}
			if v.Kind() != attrs[j].Kind {
				return nil, fmt.Errorf("cell expression for %s evaluated to %s, want %s",
					attrs[j].Name, v.Kind(), attrs[j].Kind)
			}
			out[j] = v
		case c.isTpl:
			out[j] = relation.Str(strings.ReplaceAll(c.strTpl, "{i}", fmt.Sprint(i)))
		default:
			out[j] = c.lit
		}
	}
	return out, nil
}

// burstEnv resolves the single variable i.
type burstEnv int

func (e burstEnv) Lookup(name string) (relation.Value, bool) {
	if name == "i" {
		return relation.Int(int64(e)), true
	}
	return relation.Null(), false
}

func bindQuery(n *node, spec *Spec) (*QueryStep, error) {
	b, err := bindMap(n)
	if err != nil {
		return nil, err
	}
	out := &QueryStep{}
	en, err := b.need("export")
	if err != nil {
		return nil, err
	}
	if out.Export, err = en.asString(); err != nil {
		return nil, err
	}
	if an := b.get("attrs"); an != nil {
		if out.Attrs, err = an.asStringList(); err != nil {
			return nil, err
		}
	}
	if wn := b.get("where"); wn != nil {
		if out.WhereSrc, err = wn.asString(); err != nil {
			return nil, err
		}
		if out.Where, err = sqlview.ParseExpr(out.WhereSrc); err != nil {
			return nil, errAt(wn.line, "where %q: %v", out.WhereSrc, err)
		}
	}
	if sn := b.get("stale"); sn != nil {
		if out.Stale, err = sn.asBool(); err != nil {
			return nil, err
		}
	}
	if mn := b.get("max_staleness"); mn != nil {
		v, err := mn.asInt()
		if err != nil {
			return nil, err
		}
		if v <= 0 {
			return nil, errAt(mn.line, "max_staleness must be > 0")
		}
		if !out.Stale {
			return nil, errAt(mn.line, "max_staleness requires stale: true")
		}
		out.MaxStaleness = clock.Time(v)
	}
	if xn := b.get("expect"); xn != nil {
		if out.Expect, err = bindExpect(xn); err != nil {
			return nil, err
		}
	}
	return out, b.finish("query")
}

func bindExpect(n *node) (*ExpectSpec, error) {
	b, err := bindMap(n)
	if err != nil {
		return nil, err
	}
	out := &ExpectSpec{}
	if en := b.get("error"); en != nil {
		if out.ErrContains, err = en.asString(); err != nil {
			return nil, err
		}
		if out.ErrContains == "" {
			return nil, errAt(en.line, "expect.error must be a non-empty substring")
		}
	}
	if cn := b.get("count"); cn != nil {
		v, err := cn.asInt()
		if err != nil {
			return nil, err
		}
		if v < 0 {
			return nil, errAt(cn.line, "expect.count must be >= 0")
		}
		c := int(v)
		out.Count = &c
	}
	if dn := b.get("degraded"); dn != nil {
		v, err := dn.asBool()
		if err != nil {
			return nil, err
		}
		out.Degraded = &v
	}
	if rn := b.get("rows"); rn != nil {
		list, err := rn.asList()
		if err != nil {
			return nil, err
		}
		out.HasRows = true
		for _, row := range list {
			cells, err := row.asList()
			if err != nil {
				return nil, err
			}
			t := make(relation.Tuple, len(cells))
			for i, c := range cells {
				v, err := bindFreeValue(c)
				if err != nil {
					return nil, err
				}
				t[i] = v
			}
			out.Rows = append(out.Rows, t)
		}
	}
	if out.ErrContains != "" && (out.HasRows || out.Count != nil || out.Degraded != nil) {
		return nil, errAt(n.line, "expect.error excludes rows/count/degraded")
	}
	return out, b.finish("expect")
}

// bindFreeValue types an expectation cell by its syntax (the answer
// schema is not known at bind time): quoted → string, true/false → bool,
// integer → int, decimal → float.
func bindFreeValue(c *node) (relation.Value, error) {
	if c.kind != kindScalar {
		return relation.Null(), errAt(c.line, "expected a scalar cell")
	}
	if c.quoted {
		return relation.Str(c.scalar), nil
	}
	switch c.scalar {
	case "true":
		return relation.Bool(true), nil
	case "false":
		return relation.Bool(false), nil
	case "null":
		return relation.Null(), nil
	}
	if v, err := c.asInt(); err == nil {
		return relation.Int(v), nil
	}
	var f float64
	if _, err := fmt.Sscanf(c.scalar, "%g", &f); err == nil {
		return relation.Float(f), nil
	}
	return relation.Str(c.scalar), nil
}

func bindSubscribe(n *node) (*SubscribeStep, error) {
	b, err := bindMap(n)
	if err != nil {
		return nil, err
	}
	out := &SubscribeStep{}
	nn, err := b.need("name")
	if err != nil {
		return nil, err
	}
	if out.Name, err = nn.asString(); err != nil {
		return nil, err
	}
	if !validName(out.Name) {
		return nil, errAt(nn.line, "subscription name %q must be lowercase [a-z0-9-]", out.Name)
	}
	en, err := b.need("export")
	if err != nil {
		return nil, err
	}
	if out.Export, err = en.asString(); err != nil {
		return nil, err
	}
	uints := []struct {
		key string
		dst func(int64)
	}{
		{"from", func(v int64) { out.From = uint64(v) }},
		{"max_queue", func(v int64) { out.MaxQueue = int(v) }},
		{"max_lag", func(v int64) { out.MaxLag = clock.Time(v) }},
	}
	for _, u := range uints {
		if v := b.get(u.key); v != nil {
			i, err := v.asInt()
			if err != nil {
				return nil, err
			}
			if i < 0 {
				return nil, errAt(v.line, "%s must be >= 0", u.key)
			}
			u.dst(i)
		}
	}
	return out, b.finish("subscribe " + out.Name)
}

func bindDrain(n *node) (*DrainStep, error) {
	b, err := bindMap(n)
	if err != nil {
		return nil, err
	}
	out := &DrainStep{}
	sn, err := b.need("sub")
	if err != nil {
		return nil, err
	}
	if out.Sub, err = sn.asString(); err != nil {
		return nil, err
	}
	if fn := b.get("frames"); fn != nil {
		v, err := fn.asInt()
		if err != nil {
			return nil, err
		}
		if v < 0 {
			return nil, errAt(fn.line, "frames must be >= 0")
		}
		f := int(v)
		out.Frames = &f
	}
	if kn := b.get("kinds"); kn != nil {
		if out.Kinds, err = kn.asStringList(); err != nil {
			return nil, err
		}
		for _, k := range out.Kinds {
			if k != "snapshot" && k != "delta" {
				return nil, errAt(kn.line, "frame kind %q must be snapshot or delta", k)
			}
		}
	}
	if mn := b.get("match_store"); mn != nil {
		if out.MatchStore, err = mn.asBool(); err != nil {
			return nil, err
		}
	}
	if cn := b.get("min_coalesced"); cn != nil {
		v, err := cn.asInt()
		if err != nil {
			return nil, err
		}
		if v < 0 {
			return nil, errAt(cn.line, "min_coalesced must be >= 0")
		}
		out.MinCoalesced = int(v)
	}
	return out, b.finish("drain " + out.Sub)
}

func bindAssert(n *node, spec *Spec) (*AssertStep, error) {
	b, err := bindMap(n)
	if err != nil {
		return nil, err
	}
	out := &AssertStep{}
	if cn := b.get("consistency"); cn != nil {
		if out.Consistency, err = cn.asBool(); err != nil {
			return nil, err
		}
	}
	if tn := b.get("theorem72"); tn != nil {
		if out.Theorem72, err = tn.asBool(); err != nil {
			return nil, err
		}
	}
	if fn := b.get("freshness"); fn != nil {
		fb, err := bindMap(fn)
		if err != nil {
			return nil, err
		}
		out.Freshness = clock.Vector{}
		for _, src := range fb.n.keys {
			if !spec.hasSource(src) {
				return nil, errAt(fn.line, "freshness: unknown source %q", src)
			}
			v, err := fb.get(src).asInt()
			if err != nil {
				return nil, err
			}
			out.Freshness[src] = clock.Time(v)
		}
	}
	if qn := b.get("quarantined"); qn != nil {
		list, err := qn.asStringList()
		if err != nil {
			return nil, err
		}
		for _, src := range list {
			if !spec.hasFaultTarget(src) {
				return nil, errAt(qn.line, "quarantined: unknown source %q", src)
			}
		}
		out.Quarantined = list
		out.HasQuarantined = true
	}
	if sn := b.get("store"); sn != nil {
		sb, err := bindMap(sn)
		if err != nil {
			return nil, err
		}
		out.Store = map[string]int{}
		for _, nodeName := range sb.n.keys {
			v, err := sb.get(nodeName).asInt()
			if err != nil {
				return nil, err
			}
			if v < 0 {
				return nil, errAt(sn.line, "store count must be >= 0")
			}
			out.Store[nodeName] = int(v)
		}
	}
	if stn := b.get("stats"); stn != nil {
		sb, err := bindMap(stn)
		if err != nil {
			return nil, err
		}
		for _, name := range sb.n.keys {
			if !statNames[name] {
				known := make([]string, 0, len(statNames))
				for k := range statNames {
					known = append(known, k)
				}
				sortStrings(known)
				return nil, errAt(stn.line, "unknown stat %q (known: %s)", name, strings.Join(known, ", "))
			}
			v := sb.get(name)
			sa := StatAssert{Name: name, Max: -1}
			if v.kind == kindScalar {
				exact, err := v.asInt()
				if err != nil {
					return nil, err
				}
				sa.Min, sa.Max = exact, exact
			} else {
				vb, err := bindMap(v)
				if err != nil {
					return nil, err
				}
				if mn := vb.get("min"); mn != nil {
					if sa.Min, err = mn.asInt(); err != nil {
						return nil, err
					}
				}
				if mx := vb.get("max"); mx != nil {
					if sa.Max, err = mx.asInt(); err != nil {
						return nil, err
					}
				}
				if err := vb.finish("stat " + name); err != nil {
					return nil, err
				}
			}
			out.Stats = append(out.Stats, sa)
		}
	}
	if en := b.get("events"); en != nil {
		list, err := en.asList()
		if err != nil {
			return nil, err
		}
		for _, item := range list {
			eb, err := bindMap(item)
			if err != nil {
				return nil, err
			}
			ea := EventAssert{Min: 1}
			tn, err := eb.need("type")
			if err != nil {
				return nil, err
			}
			if ea.Type, err = tn.asString(); err != nil {
				return nil, err
			}
			if sn := eb.get("subject"); sn != nil {
				if ea.Subject, err = sn.asString(); err != nil {
					return nil, err
				}
			}
			if mn := eb.get("min"); mn != nil {
				v, err := mn.asInt()
				if err != nil {
					return nil, err
				}
				ea.Min = int(v)
			}
			if err := eb.finish("event assertion"); err != nil {
				return nil, err
			}
			out.Events = append(out.Events, ea)
		}
	}
	if dn := b.get("dropped_announcements"); dn != nil {
		db, err := bindMap(dn)
		if err != nil {
			return nil, err
		}
		out.DroppedAnns = map[string]int{}
		for _, src := range db.n.keys {
			if !spec.hasFaultTarget(src) {
				return nil, errAt(dn.line, "dropped_announcements: unknown source %q", src)
			}
			v, err := db.get(src).asInt()
			if err != nil {
				return nil, err
			}
			out.DroppedAnns[src] = int(v)
		}
	}
	return out, b.finish("assert")
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// validate builds the VDP (proving sources/views/annotations coherent)
// and checks every timeline reference against it. For a tiered scenario
// every plan layer must build: each tier's plan over its leaf sources,
// the top plan over the tiers' exports, and the composed flat plan the
// correctness checkers evaluate.
func (s *Spec) validate() error {
	var plan *vdp.VDP
	if s.Tiered() {
		tiers, err := s.BuildTierPlans()
		if err != nil {
			return err
		}
		if plan, err = s.BuildTopPlan(tiers); err != nil {
			return err
		}
		if _, err := s.BuildFlatPlan(); err != nil {
			return err
		}
	} else {
		var err error
		if plan, err = s.BuildPlan(); err != nil {
			return err
		}
	}
	exports := map[string]bool{}
	for _, e := range plan.Exports() {
		exports[e] = true
	}
	declaredSubs := map[string]bool{}
	for i := range s.Steps {
		st := &s.Steps[i]
		switch st.Kind {
		case "subscribe":
			if !exports[st.Subscribe.Export] {
				return errAt(st.Line, "subscribe: %q is not an export (have %s)",
					st.Subscribe.Export, strings.Join(plan.Exports(), ", "))
			}
			declaredSubs[st.Subscribe.Name] = true
		case "drain":
			if !declaredSubs[st.Drain.Sub] {
				return errAt(st.Line, "drain: subscription %q not declared by an earlier subscribe step", st.Drain.Sub)
			}
		case "unsubscribe":
			if !declaredSubs[st.Sub] {
				return errAt(st.Line, "unsubscribe: subscription %q not declared by an earlier subscribe step", st.Sub)
			}
		case "query":
			q := st.Query
			if !exports[q.Export] {
				return errAt(st.Line, "query: %q is not an export (have %s)", q.Export, strings.Join(plan.Exports(), ", "))
			}
			schema := plan.Node(q.Export).Schema
			for _, a := range q.Attrs {
				if _, ok := schema.AttrIndex(a); !ok {
					return errAt(st.Line, "query: export %s has no attribute %q", q.Export, a)
				}
			}
		case "reannotate":
			for _, a := range st.Reannotate {
				if err := checkAnnSpec(plan, a, st.Line); err != nil {
					return err
				}
			}
		case "assert":
			if st.Assert.Store != nil {
				for nodeName := range st.Assert.Store {
					if plan.Node(nodeName) == nil {
						return errAt(st.Line, "assert.store: unknown node %q", nodeName)
					}
				}
			}
		}
	}
	return nil
}

func checkAnnSpec(plan *vdp.VDP, a AnnSpec, line int) error {
	n := plan.Node(a.Node)
	if n == nil {
		return errAt(line, "reannotate: unknown node %q", a.Node)
	}
	if n.IsLeaf() {
		return errAt(line, "reannotate: %q is a leaf; annotate derived nodes", a.Node)
	}
	for _, attr := range append(append([]string{}, a.Materialized...), a.Virtual...) {
		if _, ok := n.Schema.AttrIndex(attr); !ok {
			return errAt(line, "reannotate: node %s has no attribute %q", a.Node, attr)
		}
	}
	return nil
}

// BuildPlan constructs the annotated VDP the spec declares.
func (s *Spec) BuildPlan() (*vdp.VDP, error) {
	b := vdp.NewBuilder()
	for _, src := range s.Sources {
		for _, rs := range src.Relations {
			schema, err := relSchema(rs)
			if err != nil {
				return nil, err
			}
			if err := b.AddSource(src.Name, schema); err != nil {
				return nil, errAt(rs.Line, "source %s: %v", src.Name, err)
			}
		}
	}
	for _, v := range s.Views {
		if err := b.AddViewSQL(v.Name, v.SQL); err != nil {
			return nil, errAt(v.Line, "view %s: %v", v.Name, err)
		}
	}
	for _, a := range s.Annotat {
		b.Annotate(a.Node, vdp.Ann(a.Materialized, a.Virtual))
	}
	plan, err := b.Build()
	if err != nil {
		return nil, errAt(1, "plan: %v", err)
	}
	for _, a := range s.Annotat {
		if err := checkAnnSpec(plan, a, a.Line); err != nil {
			return nil, err
		}
	}
	return plan, nil
}

// BuildTierPlans constructs one plan per declared mediator, each over
// its listed leaf sources' relations only.
func (s *Spec) BuildTierPlans() (map[string]*vdp.VDP, error) {
	out := map[string]*vdp.VDP{}
	for _, m := range s.Mediators {
		b := vdp.NewBuilder()
		for _, srcName := range m.Sources {
			for i := range s.Sources {
				if s.Sources[i].Name != srcName {
					continue
				}
				for _, rs := range s.Sources[i].Relations {
					schema, err := relSchema(rs)
					if err != nil {
						return nil, err
					}
					if err := b.AddSource(srcName, schema); err != nil {
						return nil, errAt(m.Line, "mediator %s: source %s: %v", m.Name, srcName, err)
					}
				}
			}
		}
		for _, v := range m.Views {
			if err := b.AddViewSQL(v.Name, v.SQL); err != nil {
				return nil, errAt(v.Line, "mediator %s: view %s: %v", m.Name, v.Name, err)
			}
		}
		plan, err := b.Build()
		if err != nil {
			return nil, errAt(m.Line, "mediator %s plan: %v", m.Name, err)
		}
		out[m.Name] = plan
	}
	return out, nil
}

// BuildTopPlan constructs the top mediator's plan: each tier's exports
// bound as source relations under the tier's name, the spec's views
// over them, and the spec's annotations applied.
func (s *Spec) BuildTopPlan(tiers map[string]*vdp.VDP) (*vdp.VDP, error) {
	b := vdp.NewBuilder()
	for _, m := range s.Mediators {
		tp := tiers[m.Name]
		for _, e := range tp.Exports() {
			if err := b.AddSource(m.Name, tp.Node(e).Schema); err != nil {
				return nil, errAt(m.Line, "mediator %s export %s: %v", m.Name, e, err)
			}
		}
	}
	for _, v := range s.Views {
		if err := b.AddViewSQL(v.Name, v.SQL); err != nil {
			return nil, errAt(v.Line, "view %s: %v", v.Name, err)
		}
	}
	for _, a := range s.Annotat {
		b.Annotate(a.Node, vdp.Ann(a.Materialized, a.Virtual))
	}
	plan, err := b.Build()
	if err != nil {
		return nil, errAt(1, "top plan: %v", err)
	}
	for _, a := range s.Annotat {
		if err := checkAnnSpec(plan, a, a.Line); err != nil {
			return nil, err
		}
	}
	return plan, nil
}

// BuildFlatPlan composes the federation into one single-mediator plan
// over the leaf sources — every tier view, then every top view, as
// views of one VDP. The correctness checkers evaluate this plan at
// base-coordinate Reflect vectors: it defines what the federation's
// answers must equal (DESIGN.md §11's composition argument).
func (s *Spec) BuildFlatPlan() (*vdp.VDP, error) {
	b := vdp.NewBuilder()
	for _, src := range s.Sources {
		for _, rs := range src.Relations {
			schema, err := relSchema(rs)
			if err != nil {
				return nil, err
			}
			if err := b.AddSource(src.Name, schema); err != nil {
				return nil, errAt(rs.Line, "source %s: %v", src.Name, err)
			}
		}
	}
	for _, m := range s.Mediators {
		for _, v := range m.Views {
			if err := b.AddViewSQL(v.Name, v.SQL); err != nil {
				return nil, errAt(v.Line, "mediator %s: view %s: %v", m.Name, v.Name, err)
			}
		}
	}
	for _, v := range s.Views {
		if err := b.AddViewSQL(v.Name, v.SQL); err != nil {
			return nil, errAt(v.Line, "view %s: %v", v.Name, err)
		}
	}
	plan, err := b.Build()
	if err != nil {
		return nil, errAt(1, "flat plan: %v", err)
	}
	return plan, nil
}

// relSchema builds the relation schema one RelSpec declares.
func relSchema(rs RelSpec) (*relation.Schema, error) {
	attrs := make([]relation.Attribute, len(rs.Attrs))
	for i, a := range rs.Attrs {
		attrs[i] = relation.Attribute{Name: a.Name, Type: a.Kind}
	}
	schema, err := relation.NewSchema(rs.Name, attrs, rs.Key...)
	if err != nil {
		return nil, errAt(rs.Line, "relation %s: %v", rs.Name, err)
	}
	return schema, nil
}

// SeedRelations materializes the declared seed rows per source.
func (s *Spec) SeedRelations(plan *vdp.VDP) (map[string]map[string]*relation.Relation, error) {
	out := map[string]map[string]*relation.Relation{}
	for _, src := range s.Sources {
		m := map[string]*relation.Relation{}
		for _, rs := range src.Relations {
			n := plan.Node(rs.Name)
			if n == nil {
				return nil, fmt.Errorf("relation %s not in plan", rs.Name)
			}
			r := relation.NewSet(n.Schema)
			for _, t := range rs.Rows {
				if !r.Insert(t) {
					return nil, fmt.Errorf("duplicate seed row for %s: %s", rs.Name, t)
				}
			}
			m[rs.Name] = r
		}
		out[src.Name] = m
	}
	return out, nil
}
