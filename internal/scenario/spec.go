package scenario

import (
	"fmt"
	"strings"

	"squirrel/internal/algebra"
	"squirrel/internal/clock"
	"squirrel/internal/relation"
)

// Spec is one fully validated scenario: the integration environment
// (sources, views, annotations, delays) plus the timeline to execute.
type Spec struct {
	Name        string
	Description string
	// Horizon, if > 0, bounds the simulation: one-shot events scheduled
	// past it are dropped AND counted, and the runner fails the scenario
	// when the count is non-zero (truncated timelines must fail loudly).
	Horizon clock.Time
	Delays  DelaySpec
	Sources []SourceSpec
	// Mediators, when non-empty, makes the scenario a two-level
	// federation (DESIGN.md §11): each entry is a middle-tier mediator
	// over the leaf sources, served upward as an autonomous source, and
	// the top-level Views read the tiers' exports instead of leaf
	// relations.
	Mediators []MediatorSpec
	Views     []ViewSpec
	Annotat   []AnnSpec
	Steps     []Step
}

// MediatorSpec declares one middle-tier mediator: the leaf sources it
// consumes, its views (all fully materialized — the export-as-source
// adapter serves nothing else), and the delay triple of its link to the
// top mediator.
type MediatorSpec struct {
	Line    int
	Name    string
	Sources []string
	Views   []ViewSpec
	Link    LinkSpec
}

// LinkSpec is one federation hop's delay triple, mirroring a source's
// {ann, comm, q_proc} (all in virtual ticks).
type LinkSpec struct {
	Ann, Comm, QProc clock.Time
}

// SourceSpec declares one autonomous source database.
type SourceSpec struct {
	Name      string
	Relations []RelSpec
}

// RelSpec declares one source relation: schema (attribute order is
// significant), key, and seed rows loaded before the mediator initializes.
type RelSpec struct {
	Line  int
	Name  string
	Attrs []AttrSpec
	Key   []string
	Rows  []relation.Tuple
}

// AttrSpec is one attribute declaration ("name:kind").
type AttrSpec struct {
	Name string
	Kind relation.Kind
}

// ViewSpec declares one view by its SQL definition.
type ViewSpec struct {
	Line int
	Name string
	SQL  string
}

// AnnSpec assigns a node's attribute annotation (used both for the
// initial plan and for reannotate timeline steps).
type AnnSpec struct {
	Line         int
	Node         string
	Materialized []string
	Virtual      []string
}

// DelaySpec carries the Theorem 7.2 delay vocabulary, all in virtual
// ticks. Zero values mean "instantaneous" (and UHold 0 means no periodic
// update loop: the timeline flushes explicitly — group-commit style).
type DelaySpec struct {
	UHold    clock.Time
	UProc    clock.Time
	QProcMed clock.Time
	// PerSource maps a source name to its {ann, comm, q_proc} delays.
	Ann, Comm, QProc map[string]clock.Time
}

// Step is one timeline entry; Kind selects which payload field applies.
type Step struct {
	Line int
	Kind string // advance|commit|burst|flush|query|crash|restore|hang|drop_announcements|reannotate|resync|note|assert|subscribe|drain|unsubscribe

	Advance    clock.Time
	Commit     *CommitStep
	Burst      *BurstStep
	Query      *QueryStep
	Source     string // crash / restore / resync target
	Hang       *HangStep
	Drop       *DropStep
	Reannotate []AnnSpec
	Note       string
	Assert     *AssertStep
	Subscribe  *SubscribeStep
	Drain      *DrainStep
	Sub        string // unsubscribe target
}

// SubscribeStep registers a named push subscription on a fully
// materialized export. Re-subscribing an existing name closes the old
// stream but keeps its replica, so `from` can resume where it left off.
type SubscribeStep struct {
	Name     string
	Export   string
	From     uint64 // resume after this store version (0 = snapshot start)
	MaxQueue int
	MaxLag   clock.Time
}

// DrainStep consumes every queued frame of a subscription, applying each
// to the subscription's replica, and optionally asserts the drained
// sequence and the replica's convergence with the store.
type DrainStep struct {
	Sub string
	// Frames, if non-nil, is the exact number of frames expected.
	Frames *int
	// Kinds, if non-empty, is the exact kind sequence ("snapshot"/"delta").
	Kinds []string
	// MatchStore asserts the replica equals the export's current store
	// snapshot after the drain.
	MatchStore bool
	// MinCoalesced asserts at least this many commits were coalesced into
	// the drained frames (backpressure actually engaged).
	MinCoalesced int
}

// CommitStep applies one source transaction at the current virtual time.
type CommitStep struct {
	Source   string
	Relation string
	Insert   []relation.Tuple
	Delete   []relation.Tuple
}

// BurstStep schedules Count commits spaced Every ticks apart, starting
// Every ticks from the current time. Cells are either literals or (for
// numeric attributes) expressions over the burst index `i`; string cells
// substitute "{i}".
type BurstStep struct {
	Source   string
	Relation string
	Count    int
	Every    clock.Time
	Insert   []burstRow
	Delete   []burstRow
}

type burstRow []burstCell

// burstCell is one templated cell: either a fixed literal or an
// expression over the burst index.
type burstCell struct {
	lit    relation.Value
	expr   algebra.Expr // numeric template, evaluated with i bound
	strTpl string       // string template with {i}
	isExpr bool
	isTpl  bool
}

// HangStep makes a source hang: polls burn Ticks of virtual time, then
// fail (restore clears it).
type HangStep struct {
	Source string
	Ticks  clock.Time
}

// DropStep silently discards the next Count announcements from Source —
// an announcement gap the mediator must detect when delivery resumes.
type DropStep struct {
	Source string
	Count  int
}

// QueryStep runs one query transaction against the mediator.
type QueryStep struct {
	Export       string
	Attrs        []string
	WhereSrc     string
	Where        algebra.Expr
	Stale        bool
	MaxStaleness clock.Time
	Expect       *ExpectSpec
}

// ExpectSpec is the per-query assertion set. Nil pointer fields are
// "not asserted".
type ExpectSpec struct {
	Rows     []relation.Tuple
	HasRows  bool
	Count    *int
	Degraded *bool
	// ErrContains expects the query to FAIL with an error containing the
	// substring; any other expectation is then invalid.
	ErrContains string
}

// AssertStep checks recorded state mid-timeline.
type AssertStep struct {
	// Consistency runs checker.CheckConsistency over the trace so far.
	Consistency bool
	// Theorem72 checks CheckFreshness against bounds computed from the
	// spec's delay vector (Delays.Bounds).
	Theorem72 bool
	// Freshness checks CheckFreshness against explicit per-source bounds.
	Freshness clock.Vector
	// Quarantined asserts the exact quarantined-source set.
	Quarantined    []string
	HasQuarantined bool
	// Store asserts per-node stored row counts (distinct tuples).
	Store map[string]int
	// Stats assert mediator counters by snake_case name.
	Stats []StatAssert
	// Events assert counts of mediator event-ring entries by type (and
	// optional subject).
	Events []EventAssert
	// DroppedAnns asserts the per-source count of announcements the
	// harness discarded (crash / drop_announcements).
	DroppedAnns map[string]int
}

// StatAssert bounds one mediator counter: Min ≤ value ≤ Max (Max < 0
// means unbounded above).
type StatAssert struct {
	Name     string
	Min, Max int64
}

// EventAssert requires at least Min events of Type (and Subject, when
// non-empty) in the mediator's event ring.
type EventAssert struct {
	Type    string
	Subject string
	Min     int
}

// ParseSpec parses and strictly validates a YAML scenario document:
// unknown keys, type mismatches, unknown sources/relations/attributes,
// arity errors, and un-buildable plans are all rejected with line
// numbers. The returned Spec always builds a valid VDP.
func ParseSpec(data []byte) (*Spec, error) {
	root, err := parseYAML(data)
	if err != nil {
		return nil, err
	}
	b, err := bindMap(root)
	if err != nil {
		return nil, err
	}
	spec := &Spec{}
	n, err := b.need("name")
	if err != nil {
		return nil, err
	}
	if spec.Name, err = n.asString(); err != nil {
		return nil, err
	}
	if !validName(spec.Name) {
		return nil, errAt(n.line, "scenario name %q must be lowercase [a-z0-9-]", spec.Name)
	}
	if d := b.get("description"); d != nil {
		if spec.Description, err = d.asString(); err != nil {
			return nil, err
		}
	}
	if h := b.get("horizon"); h != nil {
		v, err := h.asInt()
		if err != nil {
			return nil, err
		}
		if v < 0 {
			return nil, errAt(h.line, "horizon must be >= 0")
		}
		spec.Horizon = clock.Time(v)
	}
	if dn := b.get("delays"); dn != nil {
		if err := bindDelays(dn, &spec.Delays); err != nil {
			return nil, err
		}
	} else {
		spec.Delays = DelaySpec{Ann: map[string]clock.Time{}, Comm: map[string]clock.Time{}, QProc: map[string]clock.Time{}}
	}
	srcs, err := b.need("sources")
	if err != nil {
		return nil, err
	}
	if err := bindSources(srcs, spec); err != nil {
		return nil, err
	}
	if mn := b.get("mediators"); mn != nil {
		if err := bindMediators(mn, spec); err != nil {
			return nil, err
		}
	}
	views, err := b.need("views")
	if err != nil {
		return nil, err
	}
	if err := bindViews(views, spec); err != nil {
		return nil, err
	}
	if an := b.get("annotate"); an != nil {
		list, err := an.asList()
		if err != nil {
			return nil, err
		}
		for _, item := range list {
			a, err := bindAnn(item)
			if err != nil {
				return nil, err
			}
			spec.Annotat = append(spec.Annotat, a)
		}
	}
	tl, err := b.need("timeline")
	if err != nil {
		return nil, err
	}
	if err := bindTimeline(tl, spec); err != nil {
		return nil, err
	}
	if err := b.finish("scenario"); err != nil {
		return nil, err
	}
	if err := spec.validate(); err != nil {
		return nil, err
	}
	return spec, nil
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for _, c := range s {
		if !(c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '-') {
			return false
		}
	}
	return true
}

func bindDelays(n *node, out *DelaySpec) error {
	b, err := bindMap(n)
	if err != nil {
		return err
	}
	out.Ann = map[string]clock.Time{}
	out.Comm = map[string]clock.Time{}
	out.QProc = map[string]clock.Time{}
	getTick := func(key string, dst *clock.Time) error {
		if v := b.get(key); v != nil {
			i, err := v.asInt()
			if err != nil {
				return err
			}
			if i < 0 {
				return errAt(v.line, "%s must be >= 0", key)
			}
			*dst = clock.Time(i)
		}
		return nil
	}
	if err := getTick("u_hold", &out.UHold); err != nil {
		return err
	}
	if err := getTick("u_proc", &out.UProc); err != nil {
		return err
	}
	if err := getTick("q_proc_med", &out.QProcMed); err != nil {
		return err
	}
	if sn := b.get("sources"); sn != nil {
		sb, err := bindMap(sn)
		if err != nil {
			return err
		}
		for _, src := range sb.n.keys {
			db, err := bindMap(sb.get(src))
			if err != nil {
				return err
			}
			var ann, comm, qp clock.Time
			g := func(key string, dst *clock.Time) error {
				if v := db.get(key); v != nil {
					i, err := v.asInt()
					if err != nil {
						return err
					}
					if i < 0 {
						return errAt(v.line, "%s must be >= 0", key)
					}
					*dst = clock.Time(i)
				}
				return nil
			}
			if err := g("ann", &ann); err != nil {
				return err
			}
			if err := g("comm", &comm); err != nil {
				return err
			}
			if err := g("q_proc", &qp); err != nil {
				return err
			}
			if err := db.finish("delays for source " + src); err != nil {
				return err
			}
			out.Ann[src], out.Comm[src], out.QProc[src] = ann, comm, qp
		}
	}
	return b.finish("delays")
}

var kindNames = map[string]relation.Kind{
	"int": relation.KindInt, "float": relation.KindFloat,
	"string": relation.KindString, "bool": relation.KindBool,
}

func bindSources(n *node, spec *Spec) error {
	list, err := n.asList()
	if err != nil {
		return err
	}
	seen := map[string]bool{}
	for _, item := range list {
		b, err := bindMap(item)
		if err != nil {
			return err
		}
		var src SourceSpec
		nn, err := b.need("name")
		if err != nil {
			return err
		}
		if src.Name, err = nn.asString(); err != nil {
			return err
		}
		if seen[src.Name] {
			return errAt(nn.line, "duplicate source %q", src.Name)
		}
		seen[src.Name] = true
		rels, err := b.need("relations")
		if err != nil {
			return err
		}
		relList, err := rels.asList()
		if err != nil {
			return err
		}
		for _, rn := range relList {
			r, err := bindRel(rn)
			if err != nil {
				return err
			}
			src.Relations = append(src.Relations, r)
		}
		if len(src.Relations) == 0 {
			return errAt(rels.line, "source %q declares no relations", src.Name)
		}
		if err := b.finish("source " + src.Name); err != nil {
			return err
		}
		spec.Sources = append(spec.Sources, src)
	}
	if len(spec.Sources) == 0 {
		return errAt(n.line, "scenario declares no sources")
	}
	return nil
}

func bindRel(n *node) (RelSpec, error) {
	out := RelSpec{Line: n.line}
	b, err := bindMap(n)
	if err != nil {
		return out, err
	}
	nn, err := b.need("name")
	if err != nil {
		return out, err
	}
	if out.Name, err = nn.asString(); err != nil {
		return out, err
	}
	an, err := b.need("attrs")
	if err != nil {
		return out, err
	}
	decls, err := an.asStringList()
	if err != nil {
		return out, err
	}
	if len(decls) == 0 {
		return out, errAt(an.line, "relation %q declares no attributes", out.Name)
	}
	seen := map[string]bool{}
	for _, d := range decls {
		name, kindStr, ok := strings.Cut(d, ":")
		if !ok {
			return out, errAt(an.line, "attribute %q must be name:kind (e.g. r1:int)", d)
		}
		name, kindStr = strings.TrimSpace(name), strings.TrimSpace(kindStr)
		kind, ok := kindNames[kindStr]
		if !ok {
			return out, errAt(an.line, "unknown attribute kind %q (int, float, string, bool)", kindStr)
		}
		if seen[name] {
			return out, errAt(an.line, "duplicate attribute %q", name)
		}
		seen[name] = true
		out.Attrs = append(out.Attrs, AttrSpec{Name: name, Kind: kind})
	}
	if kn := b.get("key"); kn != nil {
		if out.Key, err = kn.asStringList(); err != nil {
			return out, err
		}
		for _, k := range out.Key {
			if !seen[k] {
				return out, errAt(kn.line, "key attribute %q not declared", k)
			}
		}
	}
	if rn := b.get("rows"); rn != nil {
		rows, err := rn.asList()
		if err != nil {
			return out, err
		}
		for _, row := range rows {
			t, err := bindTuple(row, out.Attrs)
			if err != nil {
				return out, err
			}
			out.Rows = append(out.Rows, t)
		}
	}
	return out, b.finish("relation " + out.Name)
}

// bindTuple converts a YAML row into a typed tuple checked against the
// attribute declarations.
func bindTuple(n *node, attrs []AttrSpec) (relation.Tuple, error) {
	cells, err := n.asList()
	if err != nil {
		return nil, err
	}
	if len(cells) != len(attrs) {
		return nil, errAt(n.line, "row has %d cells, schema has %d attributes", len(cells), len(attrs))
	}
	out := make(relation.Tuple, len(cells))
	for i, c := range cells {
		v, err := bindValue(c, attrs[i])
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func bindValue(c *node, attr AttrSpec) (relation.Value, error) {
	if c.kind != kindScalar {
		return relation.Null(), errAt(c.line, "cell for %s must be a scalar", attr.Name)
	}
	switch attr.Kind {
	case relation.KindInt:
		v, err := c.asInt()
		if err != nil {
			return relation.Null(), errAt(c.line, "attribute %s is int: %v", attr.Name, err)
		}
		return relation.Int(v), nil
	case relation.KindFloat:
		if c.quoted {
			return relation.Null(), errAt(c.line, "attribute %s is float, got a string", attr.Name)
		}
		var f float64
		if _, err := fmt.Sscanf(c.scalar, "%g", &f); err != nil {
			return relation.Null(), errAt(c.line, "attribute %s is float, got %q", attr.Name, c.scalar)
		}
		return relation.Float(f), nil
	case relation.KindBool:
		v, err := c.asBool()
		if err != nil {
			return relation.Null(), errAt(c.line, "attribute %s is bool: %v", attr.Name, err)
		}
		return relation.Bool(v), nil
	default:
		return relation.Str(c.scalar), nil
	}
}

func bindMediators(n *node, spec *Spec) error {
	list, err := n.asList()
	if err != nil {
		return err
	}
	seen := map[string]bool{}
	for _, item := range list {
		b, err := bindMap(item)
		if err != nil {
			return err
		}
		m := MediatorSpec{Line: item.line}
		nn, err := b.need("name")
		if err != nil {
			return err
		}
		if m.Name, err = nn.asString(); err != nil {
			return err
		}
		if !validName(m.Name) {
			return errAt(nn.line, "mediator name %q must be lowercase [a-z0-9-]", m.Name)
		}
		if seen[m.Name] {
			return errAt(nn.line, "duplicate mediator %q", m.Name)
		}
		if spec.hasSource(m.Name) {
			return errAt(nn.line, "mediator %q collides with a source name", m.Name)
		}
		seen[m.Name] = true
		sn, err := b.need("sources")
		if err != nil {
			return err
		}
		if m.Sources, err = sn.asStringList(); err != nil {
			return err
		}
		if len(m.Sources) == 0 {
			return errAt(sn.line, "mediator %q consumes no sources", m.Name)
		}
		srcSeen := map[string]bool{}
		for _, src := range m.Sources {
			if !spec.hasSource(src) {
				return errAt(sn.line, "mediator %q: unknown source %q", m.Name, src)
			}
			if srcSeen[src] {
				return errAt(sn.line, "mediator %q: duplicate source %q", m.Name, src)
			}
			srcSeen[src] = true
		}
		vn, err := b.need("views")
		if err != nil {
			return err
		}
		vlist, err := vn.asList()
		if err != nil {
			return err
		}
		for _, vitem := range vlist {
			vb, err := bindMap(vitem)
			if err != nil {
				return err
			}
			v := ViewSpec{Line: vitem.line}
			vnn, err := vb.need("name")
			if err != nil {
				return err
			}
			if v.Name, err = vnn.asString(); err != nil {
				return err
			}
			vsn, err := vb.need("sql")
			if err != nil {
				return err
			}
			if v.SQL, err = vsn.asString(); err != nil {
				return err
			}
			if err := vb.finish("view " + v.Name); err != nil {
				return err
			}
			m.Views = append(m.Views, v)
		}
		if len(m.Views) == 0 {
			return errAt(vn.line, "mediator %q declares no views", m.Name)
		}
		if ln := b.get("link"); ln != nil {
			lb, err := bindMap(ln)
			if err != nil {
				return err
			}
			g := func(key string, dst *clock.Time) error {
				if v := lb.get(key); v != nil {
					i, err := v.asInt()
					if err != nil {
						return err
					}
					if i < 0 {
						return errAt(v.line, "%s must be >= 0", key)
					}
					*dst = clock.Time(i)
				}
				return nil
			}
			if err := g("ann", &m.Link.Ann); err != nil {
				return err
			}
			if err := g("comm", &m.Link.Comm); err != nil {
				return err
			}
			if err := g("q_proc", &m.Link.QProc); err != nil {
				return err
			}
			if err := lb.finish("link for mediator " + m.Name); err != nil {
				return err
			}
		}
		if err := b.finish("mediator " + m.Name); err != nil {
			return err
		}
		spec.Mediators = append(spec.Mediators, m)
	}
	if len(spec.Mediators) == 0 {
		return errAt(n.line, "mediators list is empty (omit the key for a flat scenario)")
	}
	return nil
}

func bindViews(n *node, spec *Spec) error {
	list, err := n.asList()
	if err != nil {
		return err
	}
	for _, item := range list {
		b, err := bindMap(item)
		if err != nil {
			return err
		}
		v := ViewSpec{Line: item.line}
		nn, err := b.need("name")
		if err != nil {
			return err
		}
		if v.Name, err = nn.asString(); err != nil {
			return err
		}
		sn, err := b.need("sql")
		if err != nil {
			return err
		}
		if v.SQL, err = sn.asString(); err != nil {
			return err
		}
		if err := b.finish("view " + v.Name); err != nil {
			return err
		}
		spec.Views = append(spec.Views, v)
	}
	if len(spec.Views) == 0 {
		return errAt(n.line, "scenario declares no views")
	}
	return nil
}

func bindAnn(n *node) (AnnSpec, error) {
	out := AnnSpec{Line: n.line}
	b, err := bindMap(n)
	if err != nil {
		return out, err
	}
	nn, err := b.need("node")
	if err != nil {
		return out, err
	}
	if out.Node, err = nn.asString(); err != nil {
		return out, err
	}
	if mn := b.get("materialized"); mn != nil {
		if out.Materialized, err = mn.asStringList(); err != nil {
			return out, err
		}
	}
	if vn := b.get("virtual"); vn != nil {
		if out.Virtual, err = vn.asStringList(); err != nil {
			return out, err
		}
	}
	return out, b.finish("annotation for " + out.Node)
}
