package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func parseDoc(t *testing.T, src string) *node {
	t.Helper()
	n, err := parseYAML([]byte(src))
	if err != nil {
		t.Fatalf("parseYAML: %v", err)
	}
	return n
}

func TestYAMLBlockAndFlowEquivalence(t *testing.T) {
	block := parseDoc(t, "a:\n  - 1\n  - 2\nb:\n  c: x\n  d: y\n")
	flow := parseDoc(t, "a: [1, 2]\nb: {c: x, d: y}\n")
	for _, n := range []*node{block, flow} {
		if n.kind != kindMap || len(n.keys) != 2 {
			t.Fatalf("top level = %s", n.kindName())
		}
		a := n.vals["a"]
		if a.kind != kindList || len(a.list) != 2 || a.list[1].scalar != "2" {
			t.Errorf("a = %s", a.kindName())
		}
		b := n.vals["b"]
		if b.kind != kindMap || b.vals["d"].scalar != "y" {
			t.Errorf("b = %s", b.kindName())
		}
	}
}

func TestYAMLMapOrderPreserved(t *testing.T) {
	n := parseDoc(t, "z: 1\nm: 2\na: 3\n")
	want := []string{"z", "m", "a"}
	for i, k := range n.keys {
		if k != want[i] {
			t.Fatalf("keys = %v, want %v", n.keys, want)
		}
	}
}

func TestYAMLScalars(t *testing.T) {
	n := parseDoc(t, `
plain: hello world
trail: ends, with delims] here}   # comment stripped
quoted: "a # not a comment, and a: colon"
single: 'also: quoted'
num: -42
`)
	cases := map[string]struct {
		text   string
		quoted bool
	}{
		"plain":  {"hello world", false},
		"trail":  {"ends, with delims] here}", false},
		"quoted": {"a # not a comment, and a: colon", true},
		"single": {"also: quoted", true},
		"num":    {"-42", false},
	}
	for k, want := range cases {
		got := n.vals[k]
		if got == nil || got.kind != kindScalar {
			t.Errorf("%s: not a scalar", k)
			continue
		}
		if got.scalar != want.text || got.quoted != want.quoted {
			t.Errorf("%s = %q (quoted=%v), want %q (quoted=%v)",
				k, got.scalar, got.quoted, want.text, want.quoted)
		}
	}
}

func TestYAMLListOfMaps(t *testing.T) {
	n := parseDoc(t, `
steps:
  - advance: 5
  - query:
      export: V
  - flush
`)
	steps := n.vals["steps"]
	if steps.kind != kindList || len(steps.list) != 3 {
		t.Fatalf("steps = %s", steps.kindName())
	}
	if steps.list[0].kind != kindMap || steps.list[0].vals["advance"].scalar != "5" {
		t.Errorf("step 0 = %s", steps.list[0].kindName())
	}
	q := steps.list[1].vals["query"]
	if q == nil || q.kind != kindMap || q.vals["export"].scalar != "V" {
		t.Errorf("step 1 nested map missing")
	}
	if steps.list[2].kind != kindScalar || steps.list[2].scalar != "flush" {
		t.Errorf("step 2 = %s", steps.list[2].kindName())
	}
}

func TestYAMLNestedFlow(t *testing.T) {
	n := parseDoc(t, "m: {a: [1, [2, 3]], b: {c: 4}}\n")
	m := n.vals["m"]
	inner := m.vals["a"].list[1]
	if inner.kind != kindList || inner.list[0].scalar != "2" || inner.list[1].scalar != "3" {
		t.Errorf("nested flow list = %s", inner.kindName())
	}
	if m.vals["b"].vals["c"].scalar != "4" {
		t.Errorf("nested flow map missing")
	}
}

func TestYAMLErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"tab", "a:\n\tb: 1\n", "tab"},
		{"dup key", "a: 1\na: 2\n", "duplicate key"},
		{"dup flow key", "a: {b: 1, b: 2}\n", "duplicate key"},
		{"unclosed list", "a: [1, 2\n", "expected ',' or ']'"},
		{"unclosed map", "a: {b: 1\n", "expected ',' or '}'"},
		{"unclosed quote", `a: "oops` + "\n", "unterminated"},
		{"mixed siblings", "a: 1\n- b\n", "unexpected content"},
		{"trailing flow junk", "a: [1] x\n", "trailing"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseYAML([]byte(tc.src))
			if err == nil {
				t.Fatalf("accepted %q", tc.src)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
			if !strings.HasPrefix(err.Error(), "line ") {
				t.Errorf("error %q has no line prefix", err)
			}
		})
	}
}

func TestYAMLErrorLineNumbers(t *testing.T) {
	src := "a: 1\nb: 2\nc:\n  - ok\n  - {bad: 1, bad: 2}\n"
	_, err := parseYAML([]byte(src))
	if err == nil {
		t.Fatal("accepted duplicate flow key")
	}
	if !strings.HasPrefix(err.Error(), "line 5:") {
		t.Errorf("error %q, want line 5", err)
	}
}

// FuzzScenarioSpec drives arbitrary bytes through the full parse+bind
// pipeline. Any input may be rejected, but the parser must never panic;
// parse errors must carry their line prefix.
func FuzzScenarioSpec(f *testing.F) {
	entries, err := os.ReadDir(corpusDir)
	if err != nil {
		f.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".yaml") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(corpusDir, e.Name()))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(minimalSpec))
	f.Add([]byte("a: [1, {b: 'c'}]\n"))
	f.Add([]byte("\t"))
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := ParseSpec(data)
		if err != nil {
			if !strings.HasPrefix(err.Error(), "line ") {
				t.Errorf("parse error without line prefix: %v", err)
			}
			return
		}
		if spec.Name == "" {
			t.Error("accepted spec has empty name")
		}
	})
}
