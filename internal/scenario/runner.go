package scenario

import (
	"fmt"
	"sort"
	"strings"

	"squirrel/internal/checker"
	"squirrel/internal/clock"
	"squirrel/internal/core"
	"squirrel/internal/delta"
	"squirrel/internal/relation"
	"squirrel/internal/sim"
	"squirrel/internal/source"
	"squirrel/internal/trace"
	"squirrel/internal/vdp"
)

// Result is one executed scenario: the full transcript (always complete,
// byte-for-byte deterministic for a given spec) and the failure, if any.
type Result struct {
	Spec       *Spec
	Transcript []byte
	// Err is the first assertion failure (or truncation failure). Steps
	// that merely produce errors — a query against a crashed source, a
	// failed flush — are recorded in the transcript and only fail the
	// scenario when an expect/assert says otherwise.
	Err error
}

// Passed reports whether the scenario ran to completion with every
// assertion satisfied.
func (r *Result) Passed() bool { return r.Err == nil }

// runner executes one spec. Exactly one of h (flat scenario) and th
// (tiered federation scenario) is non-nil.
type runner struct {
	spec *Spec
	h    *sim.Harness
	th   *sim.TieredHarness
	flat *vdp.VDP // tiered only: the composed plan the checkers evaluate
	out  strings.Builder
	fail error
	subs map[string]*scenSub
}

// scenSub is one named push subscription plus the replica its frames are
// applied to. The replica outlives unsubscribe/resubscribe so a later
// subscribe with `from` can resume onto it, mirroring a reconnecting
// client that kept its local copy.
type scenSub struct {
	export  string
	sub     *core.Subscription
	replica *relation.Relation
}

// Run executes the scenario on deterministic virtual time. The returned
// error is reserved for environment construction failures on a spec that
// ParseSpec accepted (it should not happen); scenario failures land in
// Result.Err with the transcript recording what happened.
func Run(spec *Spec) (*Result, error) {
	r := &runner{spec: spec}
	var err error
	if spec.Tiered() {
		err = r.setupTiered()
	} else {
		err = r.setupFlat()
	}
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", spec.Name, err)
	}

	r.out.WriteString("scenario: " + spec.Name + "\n")
	if spec.Description != "" {
		r.out.WriteString("description: " + spec.Description + "\n")
	}
	if r.th != nil {
		for _, t := range r.th.Tiers {
			fmt.Fprintf(&r.out, "tier %s: sources=[%s] exports=[%s]\n",
				t.Name, strings.Join(t.Plan.Sources(), " "), strings.Join(t.Plan.Exports(), " "))
		}
		fmt.Fprintf(&r.out, "plan: mediators=[%s] exports=[%s]\n",
			strings.Join(r.th.TierNames(), " "), strings.Join(r.th.Plan.Exports(), " "))
		r.linef("init version=%d", r.th.Top.StoreVersion())
	} else {
		fmt.Fprintf(&r.out, "plan: sources=[%s] exports=[%s]\n",
			strings.Join(r.h.Plan.Sources(), " "), strings.Join(r.h.Plan.Exports(), " "))
		r.linef("init version=%d", r.h.Med.StoreVersion())
	}

	for i := range spec.Steps {
		r.step(&spec.Steps[i])
		if r.fail != nil {
			break
		}
	}

	if r.fail == nil {
		if n := r.simc().Dropped(); n > 0 {
			// A truncated timeline must fail loudly: events that silently
			// vanished past the horizon would make the run prove nothing.
			r.failf("%d timeline event(s) dropped past horizon %d — raise the horizon or shorten the timeline", n, spec.Horizon)
		}
	}
	if r.th != nil {
		_, q := r.th.Rec.Len()
		r.linef("end updates=%d queries=%d dropped_events=%d", r.th.Top.Stats().UpdateTxns, q, r.simc().Dropped())
	} else {
		u, q := r.h.Rec.Len()
		r.linef("end updates=%d queries=%d dropped_events=%d", u, q, r.simc().Dropped())
	}
	if r.fail != nil {
		r.out.WriteString("result: FAIL: " + r.fail.Error() + "\n")
	} else {
		r.out.WriteString("result: PASS\n")
	}
	return &Result{Spec: spec, Transcript: []byte(r.out.String()), Err: r.fail}, nil
}

func (r *runner) setupFlat() error {
	spec := r.spec
	plan, err := spec.BuildPlan()
	if err != nil {
		return err
	}
	initial, err := spec.SeedRelations(plan)
	if err != nil {
		return err
	}
	h, err := sim.NewHarness(plan, initial, r.delays())
	if err != nil {
		return err
	}
	h.Sim.Horizon = spec.Horizon
	h.OnTxnError = func(err error) { r.linef("update-loop error: %v", err) }
	r.h = h
	return nil
}

func (r *runner) setupTiered() error {
	spec := r.spec
	tierPlans, err := spec.BuildTierPlans()
	if err != nil {
		return err
	}
	top, err := spec.BuildTopPlan(tierPlans)
	if err != nil {
		return err
	}
	flat, err := spec.BuildFlatPlan()
	if err != nil {
		return err
	}
	initial, err := spec.SeedRelations(flat)
	if err != nil {
		return err
	}
	tiers := make([]sim.TierSpec, len(spec.Mediators))
	for i, m := range spec.Mediators {
		tiers[i] = sim.TierSpec{Name: m.Name, Plan: tierPlans[m.Name],
			Link: sim.LinkDelays{Ann: m.Link.Ann, Comm: m.Link.Comm, QProc: m.Link.QProc}}
	}
	th, err := sim.NewTieredHarness(tiers, top, initial, r.delays())
	if err != nil {
		return err
	}
	th.Sim.Horizon = spec.Horizon
	th.OnTxnError = func(err error) { r.linef("update-loop error: %v", err) }
	r.th, r.flat = th, flat
	return nil
}

func (r *runner) delays() sim.Delays {
	return sim.Delays{
		Ann:         r.spec.Delays.Ann,
		Comm:        r.spec.Delays.Comm,
		QProcSource: r.spec.Delays.QProc,
		UHold:       r.spec.Delays.UHold,
		UProc:       r.spec.Delays.UProc,
		QProcMed:    r.spec.Delays.QProcMed,
	}
}

// med returns the queried mediator: the top of the federation, or the
// single mediator of a flat scenario.
func (r *runner) med() *core.Mediator {
	if r.th != nil {
		return r.th.Top
	}
	return r.h.Med
}

func (r *runner) simc() *sim.Sim {
	if r.th != nil {
		return r.th.Sim
	}
	return r.h.Sim
}

func (r *runner) exclusive(fn func()) {
	if r.th != nil {
		r.th.Exclusive(fn)
		return
	}
	r.h.Exclusive(fn)
}

func (r *runner) fault(name string) *sim.SourceFault {
	if r.th != nil {
		return r.th.Fault(name)
	}
	return r.h.Fault(name)
}

func (r *runner) db(src string) *source.DB {
	if r.th != nil {
		return r.th.DBs[src]
	}
	return r.h.DBs[src]
}

// linef writes one transcript line stamped with the current virtual time.
func (r *runner) linef(format string, args ...any) {
	fmt.Fprintf(&r.out, "[%8d] ", int64(r.simc().Time()))
	fmt.Fprintf(&r.out, format, args...)
	r.out.WriteByte('\n')
}

// subline writes an indented continuation line (answer rows).
func (r *runner) subline(s string) {
	r.out.WriteString("           " + s + "\n")
}

func (r *runner) failf(format string, args ...any) {
	r.fail = fmt.Errorf(format, args...)
	r.linef("FAIL: %v", r.fail)
}

func (r *runner) step(st *Step) {
	switch st.Kind {
	case "advance":
		r.simc().AdvanceBy(st.Advance)
		r.linef("advance %d", int64(st.Advance))
	case "commit":
		r.commit(st.Commit)
	case "burst":
		r.burst(st.Burst)
	case "flush":
		r.flush()
	case "query":
		r.query(st.Query)
	case "crash":
		f := r.fault(st.Source)
		f.Down = true
		r.linef("crash %s", st.Source)
	case "restore":
		f := r.fault(st.Source)
		f.Down = false
		f.HangTicks = 0
		r.linef("restore %s", st.Source)
	case "hang":
		r.fault(st.Hang.Source).HangTicks = st.Hang.Ticks
		r.linef("hang %s ticks=%d", st.Hang.Source, int64(st.Hang.Ticks))
	case "drop_announcements":
		r.fault(st.Drop.Source).DropNextAnns += st.Drop.Count
		r.linef("drop_announcements %s count=%d", st.Drop.Source, st.Drop.Count)
	case "resync":
		r.resync(st.Source)
	case "reannotate":
		r.reannotate(st.Reannotate)
	case "subscribe":
		r.subscribe(st.Subscribe)
	case "drain":
		r.drain(st.Drain)
	case "unsubscribe":
		r.unsubscribe(st.Sub)
	case "note":
		r.linef("note: %s", st.Note)
	case "assert":
		r.assert(st.Assert)
	default:
		r.failf("internal: unknown step kind %q", st.Kind)
	}
}

// resync re-derives a stream from a snapshot poll. In a tiered scenario
// the target may be a tier name (the top mediator resyncs that tier) or
// a leaf source (every tier consuming it resyncs, which publishes a
// barrier upward and quarantines the tier at the top — the two-hop heal
// then needs a second resync of the tier itself).
func (r *runner) resync(name string) {
	if r.th != nil && !r.spec.hasMediator(name) {
		for _, t := range r.th.Tiers {
			if !planHasSource(t.Plan, name) {
				continue
			}
			var err error
			med := t.Med
			r.exclusive(func() { err = med.ResyncSource(name) })
			if err != nil {
				r.linef("resync %s/%s error: %v", t.Name, name, err)
			} else {
				r.linef("resync %s/%s ok version=%d", t.Name, name, med.StoreVersion())
			}
		}
		return
	}
	var err error
	r.exclusive(func() { err = r.med().ResyncSource(name) })
	if err != nil {
		r.linef("resync %s error: %v", name, err)
	} else {
		r.linef("resync %s ok version=%d", name, r.med().StoreVersion())
	}
}

func planHasSource(p *vdp.VDP, src string) bool {
	for _, s := range p.Sources() {
		if s == src {
			return true
		}
	}
	return false
}

func (r *runner) commit(c *CommitStep) {
	d := delta.New()
	for _, t := range c.Insert {
		d.Insert(c.Relation, t)
	}
	for _, t := range c.Delete {
		d.Delete(c.Relation, t)
	}
	t, err := r.db(c.Source).Apply(d)
	if err != nil {
		r.linef("commit %s/%s error: %v", c.Source, c.Relation, err)
		return
	}
	r.linef("commit %s/%s +%d/-%d t=%d", c.Source, c.Relation, len(c.Insert), len(c.Delete), int64(t))
}

func (r *runner) burst(bu *BurstStep) {
	rs := r.spec.relSpec(bu.Source, bu.Relation)
	start := r.simc().Time()
	for k := 0; k < bu.Count; k++ {
		k := k
		at := start + bu.Every*clock.Time(k+1)
		build := func() *delta.Delta {
			d := delta.New()
			for _, row := range bu.Insert {
				t, err := row.eval(k, rs.Attrs)
				if err != nil {
					panic(fmt.Sprintf("scenario: burst row: %v", err))
				}
				d.Insert(bu.Relation, t)
			}
			for _, row := range bu.Delete {
				t, err := row.eval(k, rs.Attrs)
				if err != nil {
					panic(fmt.Sprintf("scenario: burst row: %v", err))
				}
				d.Delete(bu.Relation, t)
			}
			return d
		}
		if r.th != nil {
			r.th.ScheduleCommit(at, bu.Source, build)
		} else {
			r.h.ScheduleCommit(at, bu.Source, build)
		}
	}
	r.linef("burst %s/%s count=%d every=%d until=%d",
		bu.Source, bu.Relation, bu.Count, int64(bu.Every), int64(start+bu.Every*clock.Time(bu.Count)))
}

// flush runs one explicit update transaction. A federation drains
// bottom-up: every tier first (in declaration order), then the top, so
// a leaf commit whose announcements have arrived crosses both hops.
func (r *runner) flush() {
	if r.th != nil {
		r.exclusive(func() {
			for _, t := range r.th.Tiers {
				r.simc().AdvanceBy(r.spec.Delays.UProc)
				ran, err := t.Med.RunUpdateTransaction()
				if err != nil {
					r.linef("flush %s error: %v", t.Name, err)
					continue
				}
				r.linef("flush %s ran=%v version=%d", t.Name, ran, t.Med.StoreVersion())
			}
			r.simc().AdvanceBy(r.spec.Delays.UProc)
			ran, err := r.th.Top.RunUpdateTransaction()
			if err != nil {
				r.linef("flush error: %v", err)
				return
			}
			r.linef("flush ran=%v version=%d", ran, r.th.Top.StoreVersion())
		})
		return
	}
	var ran bool
	var err error
	r.h.Exclusive(func() {
		r.h.Sim.AdvanceBy(r.spec.Delays.UProc)
		ran, err = r.h.Med.RunUpdateTransaction()
	})
	if err != nil {
		r.linef("flush error: %v", err)
		return
	}
	r.linef("flush ran=%v version=%d", ran, r.h.Med.StoreVersion())
}

func (r *runner) query(q *QueryStep) {
	opts := core.QueryOptions{}
	if q.Stale {
		opts.Degrade = core.ServeStale
		opts.MaxStaleness = q.MaxStaleness
	}
	var res *core.QueryResult
	var err error
	r.exclusive(func() {
		r.simc().AdvanceBy(r.spec.Delays.QProcMed)
		res, err = r.med().QueryOpts(q.Export, q.Attrs, q.Where, opts)
	})

	label := q.Export
	if len(q.Attrs) > 0 {
		label += "[" + strings.Join(q.Attrs, " ") + "]"
	}
	if q.WhereSrc != "" {
		label += " where " + q.WhereSrc
	}
	if err != nil {
		r.linef("query %s error: %v", label, err)
		if q.Expect == nil {
			return
		}
		if q.Expect.ErrContains == "" {
			r.failf("query %s failed unexpectedly: %v", label, err)
		} else if !strings.Contains(err.Error(), q.Expect.ErrContains) {
			r.failf("query %s error %q does not contain %q", label, err, q.Expect.ErrContains)
		}
		return
	}
	extra := ""
	if res.Degraded {
		extra = " degraded staleness=" + vecString(res.Staleness)
	}
	if r.th != nil {
		// Record the answer in base coordinates for the composed
		// consistency/freshness checks, and show both vectors: reflect is
		// the tier-coordinate ref(t), base its translation (DESIGN.md §11).
		r.th.Rec.RecordQuery(trace.QueryTxn{
			Committed: res.Committed, Reflect: res.BaseReflect,
			Export: q.Export, Attrs: q.Attrs, Cond: q.Where,
			Answer: res.Answer,
		})
		r.linef("query %s rows=%d version=%d reflect=%s base=%s%s",
			label, res.Answer.Len(), res.Version, vecString(res.Reflect), vecString(res.BaseReflect), extra)
	} else {
		r.linef("query %s rows=%d version=%d reflect=%s%s",
			label, res.Answer.Len(), res.Version, vecString(res.Reflect), extra)
	}
	for _, rw := range res.Answer.Rows() {
		s := rw.Tuple.String()
		if rw.Count != 1 {
			s += fmt.Sprintf(" x%d", rw.Count)
		}
		r.subline(s)
	}
	r.checkExpect(q, res, label)
}

func (r *runner) checkExpect(q *QueryStep, res *core.QueryResult, label string) {
	x := q.Expect
	if x == nil {
		return
	}
	if x.ErrContains != "" {
		r.failf("query %s expected an error containing %q, got %d rows", label, x.ErrContains, res.Answer.Len())
		return
	}
	if x.Count != nil && res.Answer.Len() != *x.Count {
		r.failf("query %s expected %d rows, got %d", label, *x.Count, res.Answer.Len())
		return
	}
	if x.Degraded != nil && res.Degraded != *x.Degraded {
		r.failf("query %s expected degraded=%v, got %v", label, *x.Degraded, res.Degraded)
		return
	}
	if x.HasRows {
		want := relation.NewBag(res.Answer.Schema())
		for _, t := range x.Rows {
			if len(t) != res.Answer.Schema().Arity() {
				r.failf("query %s expect.rows arity %d does not match answer arity %d",
					label, len(t), res.Answer.Schema().Arity())
				return
			}
			want.Add(t, 1)
		}
		if !res.Answer.Equal(want) {
			r.failf("query %s answer mismatch:\ngot\n%swant\n%s", label, res.Answer, want)
		}
	}
}

func (r *runner) reannotate(anns []AnnSpec) {
	m := map[string]vdp.Annotation{}
	names := make([]string, 0, len(anns))
	for _, a := range anns {
		m[a.Node] = vdp.Ann(a.Materialized, a.Virtual)
		names = append(names, a.Node)
	}
	var flips []core.AnnotationFlip
	var err error
	r.exclusive(func() { flips, err = r.med().Reannotate(m) })
	if err != nil {
		r.linef("reannotate %s error: %v", strings.Join(names, ","), err)
		return
	}
	parts := make([]string, len(flips))
	for i, f := range flips {
		parts[i] = f.String()
	}
	r.linef("reannotate %s flips=[%s] version=%d",
		strings.Join(names, ","), strings.Join(parts, " "), r.med().StoreVersion())
}

func (r *runner) subscribe(s *SubscribeStep) {
	var sub *core.Subscription
	var err error
	r.exclusive(func() {
		sub, err = r.med().Subscribe(s.Export, core.SubscribeOptions{
			FromVersion: s.From, MaxQueue: s.MaxQueue, MaxLag: s.MaxLag,
		})
	})
	if err != nil {
		r.linef("subscribe %s export=%s error: %v", s.Name, s.Export, err)
		return
	}
	if r.subs == nil {
		r.subs = map[string]*scenSub{}
	}
	ss := r.subs[s.Name]
	if ss == nil {
		ss = &scenSub{export: s.Export}
		r.subs[s.Name] = ss
	} else if ss.sub != nil {
		ss.sub.Close()
	}
	if ss.export != s.Export {
		// A name re-bound to a different export cannot resume onto the old
		// replica; start over.
		ss.export, ss.replica = s.Export, nil
	}
	ss.sub = sub
	r.linef("subscribe %s export=%s from=%d", s.Name, s.Export, s.From)
}

func (r *runner) drain(d *DrainStep) {
	ss := r.subs[d.Sub]
	if ss == nil || ss.sub == nil {
		r.failf("drain %s: subscription not active", d.Sub)
		return
	}
	frames, coalesced := 0, 0
	var kinds []string
	for {
		var f core.SubFrame
		var ok bool
		var err error
		r.exclusive(func() { f, ok, err = ss.sub.TryRecv() })
		if err != nil {
			r.linef("drain %s error: %v", d.Sub, err)
			break
		}
		if !ok {
			break
		}
		frames++
		coalesced += f.Coalesced
		kinds = append(kinds, f.Kind.String())
		switch f.Kind {
		case core.SubSnapshot:
			ss.replica = f.Snapshot.Clone()
			r.linef("frame %s snapshot v=%d rows=%d", d.Sub, f.Version, f.Snapshot.Len())
		case core.SubDelta:
			if ss.replica == nil {
				r.failf("drain %s: delta frame before any snapshot", d.Sub)
				return
			}
			if err := f.Delta.ApplyTo(ss.replica, false); err != nil {
				r.failf("drain %s: apply delta v=%d: %v", d.Sub, f.Version, err)
				return
			}
			line := fmt.Sprintf("frame %s delta v=%d first=%d atoms=%d", d.Sub, f.Version, f.First, f.Delta.Len())
			if f.Coalesced > 0 {
				line += fmt.Sprintf(" coalesced=%d", f.Coalesced)
			}
			r.linef("%s", line)
		}
	}
	rows := -1
	if ss.replica != nil {
		rows = ss.replica.Len()
	}
	r.linef("drain %s frames=%d delivered=%d replica_rows=%d", d.Sub, frames, ss.sub.Delivered(), rows)
	if d.Frames != nil && frames != *d.Frames {
		r.failf("drain %s: %d frame(s), want %d", d.Sub, frames, *d.Frames)
		return
	}
	if len(d.Kinds) > 0 && !equalStrings(kinds, d.Kinds) {
		r.failf("drain %s: kinds [%s], want [%s]", d.Sub, strings.Join(kinds, " "), strings.Join(d.Kinds, " "))
		return
	}
	if coalesced < d.MinCoalesced {
		r.failf("drain %s: coalesced %d commit(s), want >= %d", d.Sub, coalesced, d.MinCoalesced)
		return
	}
	if d.MatchStore {
		var want *relation.Relation
		r.exclusive(func() { want = r.med().StoreSnapshot(ss.export) })
		if want == nil || ss.replica == nil || !ss.replica.Equal(want) {
			r.failf("drain %s: replica does not match store snapshot of %s", d.Sub, ss.export)
			return
		}
	}
}

func (r *runner) unsubscribe(name string) {
	ss := r.subs[name]
	if ss == nil || ss.sub == nil {
		r.failf("unsubscribe %s: subscription not active", name)
		return
	}
	ss.sub.Close()
	ss.sub = nil
	r.linef("unsubscribe %s", name)
}

func (r *runner) assert(a *AssertStep) {
	var checked []string
	var env checker.Environment
	if r.th != nil {
		env = r.th.Environment(r.flat)
	} else {
		env = r.h.Environment()
	}
	if a.Consistency {
		if err := env.CheckConsistency(); err != nil {
			r.failf("assert consistency: %v", err)
			return
		}
		checked = append(checked, "consistency")
	}
	if a.Theorem72 {
		bounds := r.theorem72Bounds()
		if _, err := env.CheckFreshness(bounds); err != nil {
			r.failf("assert theorem72 (bounds %s): %v", vecString(bounds), err)
			return
		}
		checked = append(checked, "theorem72="+vecString(bounds))
	}
	if a.Freshness != nil {
		worst, err := env.CheckFreshness(a.Freshness)
		if err != nil {
			r.failf("assert freshness: %v", err)
			return
		}
		checked = append(checked, "freshness worst="+vecString(worst))
	}
	if a.HasQuarantined {
		got := r.med().QuarantinedSources()
		sort.Strings(got)
		want := append([]string(nil), a.Quarantined...)
		sort.Strings(want)
		if !equalStrings(got, want) {
			r.failf("assert quarantined: got [%s], want [%s]",
				strings.Join(got, " "), strings.Join(want, " "))
			return
		}
		checked = append(checked, fmt.Sprintf("quarantined=[%s]", strings.Join(want, " ")))
	}
	if a.Store != nil {
		nodes := make([]string, 0, len(a.Store))
		for n := range a.Store {
			nodes = append(nodes, n)
		}
		sort.Strings(nodes)
		for _, nodeName := range nodes {
			snap := r.med().StoreSnapshot(nodeName)
			if snap == nil {
				r.failf("assert store: node %s has no materialized portion", nodeName)
				return
			}
			if snap.Len() != a.Store[nodeName] {
				r.failf("assert store: node %s has %d rows, want %d", nodeName, snap.Len(), a.Store[nodeName])
				return
			}
			checked = append(checked, fmt.Sprintf("store[%s]=%d", nodeName, a.Store[nodeName]))
		}
	}
	if len(a.Stats) > 0 {
		st := r.med().Stats()
		for _, sa := range a.Stats {
			v := statValue(st, sa.Name)
			if v < sa.Min || (sa.Max >= 0 && v > sa.Max) {
				r.failf("assert stats: %s=%d outside [%d, %s]", sa.Name, v, sa.Min, maxString(sa.Max))
				return
			}
			checked = append(checked, fmt.Sprintf("%s=%d", sa.Name, v))
		}
	}
	if len(a.Events) > 0 {
		log := r.med().Metrics().Events()
		recent, _ := log.Recent(log.Len())
		for _, ea := range a.Events {
			count := 0
			for _, e := range recent {
				if e.Type == ea.Type && (ea.Subject == "" || e.Subject == ea.Subject) {
					count++
				}
			}
			if count < ea.Min {
				r.failf("assert events: %d %q event(s) (subject %q), want >= %d", count, ea.Type, ea.Subject, ea.Min)
				return
			}
			checked = append(checked, fmt.Sprintf("events[%s]=%d", ea.Type, count))
		}
	}
	if a.DroppedAnns != nil {
		srcs := make([]string, 0, len(a.DroppedAnns))
		for s := range a.DroppedAnns {
			srcs = append(srcs, s)
		}
		sort.Strings(srcs)
		for _, src := range srcs {
			got := r.fault(src).DroppedAnns
			if got != a.DroppedAnns[src] {
				r.failf("assert dropped_announcements: %s dropped %d, want %d", src, got, a.DroppedAnns[src])
				return
			}
			checked = append(checked, fmt.Sprintf("dropped[%s]=%d", src, a.DroppedAnns[src]))
		}
	}
	if len(checked) == 0 {
		r.failf("assert step checks nothing")
		return
	}
	r.linef("assert ok: %s", strings.Join(checked, " "))
}

// theorem72Bounds computes the freshness vector the theorem72 assert
// enforces: the flat Theorem 7.2 bounds, or — for a federation — the
// composed bound in base-source coordinates (ComposedBounds).
func (r *runner) theorem72Bounds() clock.Vector {
	if r.th != nil {
		return r.th.ComposedBounds()
	}
	return r.h.Delay.Bounds(r.h.Med, r.h.Plan.Sources())
}

func statValue(st core.Stats, name string) int64 {
	switch name {
	case "update_txns":
		return int64(st.UpdateTxns)
	case "query_txns":
		return int64(st.QueryTxns)
	case "atoms_propagated":
		return int64(st.AtomsPropagated)
	case "source_polls":
		return int64(st.SourcePolls)
	case "tuples_polled":
		return int64(st.TuplesPolled)
	case "temps_built":
		return int64(st.TempsBuilt)
	case "queue_high_water":
		return int64(st.QueueHighWater)
	case "current_version":
		return int64(st.CurrentVersion)
	case "versions_published":
		return int64(st.VersionsPublished)
	case "poll_failures":
		return int64(st.PollFailures)
	case "poll_retries":
		return int64(st.PollRetries)
	case "degraded_queries":
		return int64(st.DegradedQueries)
	case "gaps_detected":
		return int64(st.GapsDetected)
	case "resyncs":
		return int64(st.Resyncs)
	case "annotation_switches":
		return int64(st.AnnotationSwitches)
	case "update_txn_retries":
		return int64(st.UpdateTxnRetries)
	case "active_subscribers":
		return int64(st.ActiveSubscribers)
	case "sub_frames":
		return int64(st.SubFramesDelivered)
	case "sub_coalesces":
		return int64(st.SubCoalesces)
	case "sub_lag_drops":
		return int64(st.SubLagDrops)
	case "sub_resyncs":
		return int64(st.SubSnapshotResyncs)
	}
	return -1
}

func maxString(m int64) string {
	if m < 0 {
		return "inf"
	}
	return fmt.Sprint(m)
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// vecString renders a clock vector with sorted keys: {db1:3 db2:7}.
func vecString(v clock.Vector) string {
	keys := make([]string, 0, len(v))
	for k := range v {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s:%d", k, int64(v[k]))
	}
	b.WriteByte('}')
	return b.String()
}
