package scenario

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden transcripts")

const corpusDir = "../../testdata/scenarios"

// TestScenarioCorpus is the tier-1 gate for the scenario harness: every
// spec in testdata/scenarios must parse, pass its own assertions, be
// bit-for-bit deterministic (two executions, byte-identical transcripts),
// and match its committed golden transcript. Run with -update to accept
// transcript changes.
func TestScenarioCorpus(t *testing.T) {
	entries, err := os.ReadDir(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".yaml") {
			continue
		}
		n++
		path := filepath.Join(corpusDir, e.Name())
		t.Run(strings.TrimSuffix(e.Name(), ".yaml"), func(t *testing.T) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			spec, err := ParseSpec(data)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			first, err := Run(spec)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if first.Err != nil {
				t.Fatalf("scenario failed:\n%s", first.Transcript)
			}
			// Determinism: a fresh parse and run must reproduce the
			// transcript exactly.
			spec2, err := ParseSpec(data)
			if err != nil {
				t.Fatal(err)
			}
			second, err := Run(spec2)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(first.Transcript, second.Transcript) {
				t.Fatalf("transcripts diverged between two runs of the same spec:\n--- first\n%s--- second\n%s",
					first.Transcript, second.Transcript)
			}
			golden := path + ".golden"
			if *update {
				if err := os.WriteFile(golden, first.Transcript, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if !bytes.Equal(first.Transcript, want) {
				t.Errorf("transcript differs from golden (re-run with -update to accept):\n--- got\n%s--- want\n%s",
					first.Transcript, want)
			}
		})
	}
	if n < 20 {
		t.Errorf("scenario corpus has %d specs; the harness contract requires at least 20", n)
	}
}

// minimalSpec is a tiny valid scenario other tests mutate.
const minimalSpec = `
name: mini
horizon: 1000
delays:
  u_hold: 0
  u_proc: 1
  q_proc_med: 1
  sources:
    db1: {ann: 1, comm: 1, q_proc: 1}
sources:
  - name: db1
    relations:
      - name: R
        attrs: [r1:int, r2:int]
        key: [r1]
        rows:
          - [1, 10]
views:
  - name: V
    sql: SELECT r1, r2 FROM R
timeline:
  - query:
      export: V
      expect:
        count: 1
`

func mustParse(t *testing.T, src string) *Spec {
	t.Helper()
	spec, err := ParseSpec([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestRunMinimal(t *testing.T) {
	res, err := Run(mustParse(t, minimalSpec))
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatalf("scenario failed:\n%s", res.Transcript)
	}
	if !strings.Contains(string(res.Transcript), "result: PASS") {
		t.Errorf("transcript does not end in PASS:\n%s", res.Transcript)
	}
}

// TestHorizonTruncationFailsLoudly is the regression test for silently
// dropped timeline events: a burst extending past the horizon must fail
// the scenario with the dropped-event count, not truncate quietly.
func TestHorizonTruncationFailsLoudly(t *testing.T) {
	src := strings.Replace(minimalSpec, "horizon: 1000", "horizon: 40", 1)
	src = strings.Replace(src, `timeline:
  - query:
      export: V
      expect:
        count: 1
`, `timeline:
  - burst:
      source: db1
      relation: R
      count: 10
      every: 10
      insert:
        - ["100 + i", "i"]
`, 1)
	res, err := Run(mustParse(t, src))
	if err != nil {
		t.Fatal(err)
	}
	if res.Err == nil {
		t.Fatalf("truncated timeline passed silently:\n%s", res.Transcript)
	}
	if !strings.Contains(res.Err.Error(), "dropped past horizon") {
		t.Errorf("failure does not name the horizon drop: %v", res.Err)
	}
	// The same burst under a sufficient horizon passes.
	ok := strings.Replace(src, "horizon: 40", "horizon: 1000", 1)
	res, err = Run(mustParse(t, ok))
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatalf("burst within horizon failed:\n%s", res.Transcript)
	}
}

// TestFailureTranscript: a failing expectation must produce a FAIL line
// and a complete transcript, not an abort.
func TestFailureTranscript(t *testing.T) {
	src := strings.Replace(minimalSpec, "count: 1", "count: 7", 1)
	res, err := Run(mustParse(t, src))
	if err != nil {
		t.Fatal(err)
	}
	if res.Err == nil || res.Passed() {
		t.Fatal("wrong expected count passed")
	}
	tr := string(res.Transcript)
	if !strings.Contains(tr, "FAIL") || !strings.Contains(tr, "result: FAIL") {
		t.Errorf("failure not recorded in transcript:\n%s", tr)
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := []struct {
		name string
		mut  func(string) string
		want string
	}{
		{"unknown top-level key", func(s string) string {
			return s + "\nbogus: 1\n"
		}, `unknown key "bogus"`},
		{"unknown step", func(s string) string {
			return strings.Replace(s, "- query:", "- quary:", 1)
		}, "unknown step"},
		{"unknown export", func(s string) string {
			return strings.Replace(s, "export: V", "export: W", 1)
		}, "not an export"},
		{"bad attr kind", func(s string) string {
			return strings.Replace(s, "r2:int", "r2:quux", 1)
		}, "unknown attribute kind"},
		{"row arity", func(s string) string {
			return strings.Replace(s, "- [1, 10]", "- [1, 10, 3]", 1)
		}, "3 cells"},
		{"bad name", func(s string) string {
			return strings.Replace(s, "name: mini", "name: Mini Spec", 1)
		}, "lowercase"},
		{"duplicate key", func(s string) string {
			return strings.Replace(s, "horizon: 1000", "horizon: 1000\nhorizon: 2000", 1)
		}, "duplicate key"},
		{"tab indentation", func(s string) string {
			return strings.Replace(s, "  u_hold: 0", "\tu_hold: 0", 1)
		}, "tab"},
		{"max_staleness without stale", func(s string) string {
			return strings.Replace(s, "expect:", "max_staleness: 5\n      expect:", 1)
		}, "requires stale"},
		{"empty timeline", func(s string) string {
			i := strings.Index(s, "timeline:")
			return s[:i] + "timeline: []\n"
		}, "timeline is empty"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSpec([]byte(tc.mut(minimalSpec)))
			if err == nil {
				t.Fatal("invalid spec accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

// All parse errors must carry a line number (the "line N:" prefix), so
// spec authors can find the offending construct.
func TestParseErrorsCarryLines(t *testing.T) {
	bad := strings.Replace(minimalSpec, "r2:int", "r2:quux", 1)
	_, err := ParseSpec([]byte(bad))
	if err == nil {
		t.Fatal("invalid spec accepted")
	}
	if !strings.HasPrefix(err.Error(), "line ") {
		t.Errorf("error has no line prefix: %v", err)
	}
}
