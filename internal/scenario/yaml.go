// Package scenario is the declarative integration-test harness: YAML
// scenario specs declare sources with schemas and seed rows, an annotated
// VDP, the delay vocabulary of Theorem 7.2, and a multi-step timeline
// (update bursts, queries, source crashes, announcement gaps,
// re-annotations, group-commit flushes) with assertion steps checked
// against the recorded run. Execution happens entirely on internal/sim
// virtual time, so a minutes-long chaos timeline completes in
// milliseconds and is bit-for-bit deterministic: the same spec always
// produces a byte-identical transcript, which golden files pin in CI.
//
// The YAML dialect accepted here is a strict, small subset — block
// mappings and sequences, flow lists/maps, quoted and plain scalars,
// comments — parsed by hand so the module needs no dependency and so
// every rejection names its line. Unknown keys and type mismatches are
// errors, never silently ignored; FuzzScenarioSpec keeps the parser
// panic-free on arbitrary bytes.
package scenario

import (
	"fmt"
	"strconv"
	"strings"
)

// nodeKind discriminates the three YAML value shapes the subset allows.
type nodeKind uint8

const (
	kindScalar nodeKind = iota
	kindMap
	kindList
)

// node is one parsed YAML value. Map entry order is preserved: attribute
// declarations are order-significant (they define the schema).
type node struct {
	kind   nodeKind
	line   int
	scalar string // kindScalar: raw text (unquoted form)
	quoted bool   // kindScalar: was quoted, always a string
	keys   []string
	vals   map[string]*node // kindMap (keys preserves order)
	list   []*node          // kindList
}

func (n *node) kindName() string {
	switch n.kind {
	case kindMap:
		return "mapping"
	case kindList:
		return "list"
	default:
		if n.quoted {
			return "string"
		}
		return fmt.Sprintf("scalar %q", n.scalar)
	}
}

// yamlError is a parse/bind failure pinned to a 1-based line.
type yamlError struct {
	line int
	msg  string
}

func (e *yamlError) Error() string { return fmt.Sprintf("line %d: %s", e.line, e.msg) }

func errAt(line int, format string, args ...any) error {
	return &yamlError{line: line, msg: fmt.Sprintf(format, args...)}
}

// srcLine is one significant input line.
type srcLine struct {
	num    int
	indent int
	text   string // content after indent, comments stripped
}

// parseYAML parses a whole document into a node tree.
func parseYAML(data []byte) (*node, error) {
	lines, err := scanLines(string(data))
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return nil, errAt(1, "empty document")
	}
	p := &yparser{lines: lines}
	root, err := p.parseBlock(lines[0].indent)
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.lines) {
		l := p.lines[p.pos]
		return nil, errAt(l.num, "unexpected content %q (bad indentation?)", l.text)
	}
	return root, nil
}

// scanLines splits the input into significant lines, stripping comments
// and blank lines, measuring indentation, and rejecting tabs.
func scanLines(s string) ([]srcLine, error) {
	var out []srcLine
	for num, raw := range strings.Split(s, "\n") {
		line := strings.TrimRight(raw, " \r")
		indent := 0
		for indent < len(line) && line[indent] == ' ' {
			indent++
		}
		rest := line[indent:]
		if rest == "" {
			continue
		}
		if strings.HasPrefix(rest, "\t") || strings.Contains(line[:indent], "\t") {
			return nil, errAt(num+1, "tab in indentation (use spaces)")
		}
		if stripped, ok := stripComment(rest); ok {
			rest = strings.TrimRight(stripped, " ")
			if rest == "" {
				continue
			}
		}
		if rest == "---" {
			continue // document marker: tolerated, single-document only
		}
		out = append(out, srcLine{num: num + 1, indent: indent, text: rest})
	}
	return out, nil
}

// stripComment removes a trailing " #..." comment outside quotes. The
// second return is whether anything changed or the line started with #.
func stripComment(s string) (string, bool) {
	if strings.HasPrefix(s, "#") {
		return "", true
	}
	inS, inD := false, false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\'':
			if !inD {
				inS = !inS
			}
		case '"':
			if !inS {
				inD = !inD
			}
		case '#':
			if !inS && !inD && i > 0 && s[i-1] == ' ' {
				return s[:i], true
			}
		}
	}
	return s, false
}

type yparser struct {
	lines []srcLine
	pos   int
	// pushed holds a synthetic line (the remainder of a "- key: val"
	// dash item re-interpreted as a map at a deeper indent).
	pushed *srcLine
}

func (p *yparser) peek() (srcLine, bool) {
	if p.pushed != nil {
		return *p.pushed, true
	}
	if p.pos >= len(p.lines) {
		return srcLine{}, false
	}
	return p.lines[p.pos], true
}

func (p *yparser) next() (srcLine, bool) {
	if p.pushed != nil {
		l := *p.pushed
		p.pushed = nil
		return l, true
	}
	if p.pos >= len(p.lines) {
		return srcLine{}, false
	}
	l := p.lines[p.pos]
	p.pos++
	return l, true
}

// parseBlock parses the block starting at exactly indent `at`.
func (p *yparser) parseBlock(at int) (*node, error) {
	l, ok := p.peek()
	if !ok {
		return nil, fmt.Errorf("unexpected end of document")
	}
	if l.indent != at {
		return nil, errAt(l.num, "expected content at indent %d, got %d", at, l.indent)
	}
	if l.text == "-" || strings.HasPrefix(l.text, "- ") {
		return p.parseListBlock(at)
	}
	return p.parseMapBlock(at)
}

func (p *yparser) parseListBlock(at int) (*node, error) {
	out := &node{kind: kindList, line: 0}
	for {
		l, ok := p.peek()
		if !ok || l.indent != at || !(l.text == "-" || strings.HasPrefix(l.text, "- ")) {
			break
		}
		p.next()
		if out.line == 0 {
			out.line = l.num
		}
		if l.text == "-" {
			// Item is the nested block below, indented deeper.
			nl, ok := p.peek()
			if !ok || nl.indent <= at {
				return nil, errAt(l.num, "empty list item (nothing indented under '-')")
			}
			item, err := p.parseBlock(nl.indent)
			if err != nil {
				return nil, err
			}
			out.list = append(out.list, item)
			continue
		}
		rest := strings.TrimLeft(l.text[2:], " ")
		pad := l.indent + (len(l.text) - len(rest))
		if isMapStart(rest) {
			// "- key: ..." starts a map item: re-interpret the
			// remainder as the first line of a map block at the
			// item's inner indent.
			p.pushed = &srcLine{num: l.num, indent: pad, text: rest}
			item, err := p.parseMapBlock(pad)
			if err != nil {
				return nil, err
			}
			out.list = append(out.list, item)
			continue
		}
		item, err := parseFlow(rest, l.num)
		if err != nil {
			return nil, err
		}
		out.list = append(out.list, item)
	}
	if out.line == 0 {
		l, _ := p.peek()
		return nil, errAt(l.num, "expected list")
	}
	return out, nil
}

func (p *yparser) parseMapBlock(at int) (*node, error) {
	out := &node{kind: kindMap, vals: map[string]*node{}}
	for {
		l, ok := p.peek()
		if !ok || l.indent != at {
			break
		}
		if l.text == "-" || strings.HasPrefix(l.text, "- ") {
			break
		}
		key, rest, ok := splitKey(l.text)
		if !ok {
			return nil, errAt(l.num, "expected 'key: value', got %q", l.text)
		}
		p.next()
		if out.line == 0 {
			out.line = l.num
		}
		if _, dup := out.vals[key]; dup {
			return nil, errAt(l.num, "duplicate key %q", key)
		}
		var val *node
		if rest == "" {
			nl, ok := p.peek()
			if !ok || nl.indent <= at {
				return nil, errAt(l.num, "key %q has no value (indent a block under it, or write [] / {})", key)
			}
			var err error
			val, err = p.parseBlock(nl.indent)
			if err != nil {
				return nil, err
			}
		} else {
			var err error
			val, err = parseFlow(rest, l.num)
			if err != nil {
				return nil, err
			}
		}
		out.keys = append(out.keys, key)
		out.vals[key] = val
	}
	if out.line == 0 {
		if l, ok := p.peek(); ok {
			return nil, errAt(l.num, "expected mapping, got %q", l.text)
		}
		return nil, fmt.Errorf("expected mapping at end of document")
	}
	return out, nil
}

// isMapStart reports whether a flow-less line begins a map entry:
// an unquoted key followed by ':' (and a space or end of line).
func isMapStart(s string) bool {
	_, _, ok := splitKey(s)
	return ok
}

// splitKey splits "key: rest" or "key:"; keys are plain scalars (no
// quotes, no flow characters).
func splitKey(s string) (key, rest string, ok bool) {
	i := strings.IndexByte(s, ':')
	if i <= 0 {
		return "", "", false
	}
	key = s[:i]
	if strings.ContainsAny(key, "\"'[]{},#") {
		return "", "", false
	}
	after := s[i+1:]
	if after == "" {
		return strings.TrimSpace(key), "", true
	}
	if after[0] != ' ' {
		return "", "", false
	}
	return strings.TrimSpace(key), strings.TrimSpace(after), true
}

// parseFlow parses an inline value: a flow list [..], a flow map {..},
// a quoted string, or a plain scalar.
func parseFlow(s string, line int) (*node, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, errAt(line, "empty value")
	}
	v, rest, err := parseFlowValue(s, line, false)
	if err != nil {
		return nil, err
	}
	if strings.TrimSpace(rest) != "" {
		return nil, errAt(line, "trailing content %q after value", strings.TrimSpace(rest))
	}
	return v, nil
}

// parseFlowValue parses one value from the front of s. inFlow is true
// inside [..] or {..}, where an unquoted scalar ends at the next flow
// delimiter; at block level a plain scalar runs to the end of the line.
func parseFlowValue(s string, line int, inFlow bool) (*node, string, error) {
	s = strings.TrimLeft(s, " ")
	if s == "" {
		return nil, "", errAt(line, "missing value")
	}
	switch s[0] {
	case '[':
		out := &node{kind: kindList, line: line}
		s = strings.TrimLeft(s[1:], " ")
		if strings.HasPrefix(s, "]") {
			return out, s[1:], nil
		}
		for {
			item, rest, err := parseFlowValue(s, line, true)
			if err != nil {
				return nil, "", err
			}
			out.list = append(out.list, item)
			rest = strings.TrimLeft(rest, " ")
			if strings.HasPrefix(rest, ",") {
				s = rest[1:]
				continue
			}
			if strings.HasPrefix(rest, "]") {
				return out, rest[1:], nil
			}
			return nil, "", errAt(line, "expected ',' or ']' in flow list, got %q", rest)
		}
	case '{':
		out := &node{kind: kindMap, line: line, vals: map[string]*node{}}
		s = strings.TrimLeft(s[1:], " ")
		if strings.HasPrefix(s, "}") {
			return out, s[1:], nil
		}
		for {
			i := strings.IndexByte(s, ':')
			if i <= 0 {
				return nil, "", errAt(line, "expected 'key: value' in flow map, got %q", s)
			}
			key := strings.TrimSpace(s[:i])
			if strings.ContainsAny(key, "\"'[]{},") {
				return nil, "", errAt(line, "bad flow-map key %q", key)
			}
			if _, dup := out.vals[key]; dup {
				return nil, "", errAt(line, "duplicate key %q", key)
			}
			item, rest, err := parseFlowValue(s[i+1:], line, true)
			if err != nil {
				return nil, "", err
			}
			out.keys = append(out.keys, key)
			out.vals[key] = item
			rest = strings.TrimLeft(rest, " ")
			if strings.HasPrefix(rest, ",") {
				s = strings.TrimLeft(rest[1:], " ")
				continue
			}
			if strings.HasPrefix(rest, "}") {
				return out, rest[1:], nil
			}
			return nil, "", errAt(line, "expected ',' or '}' in flow map, got %q", rest)
		}
	case '\'':
		end := strings.IndexByte(s[1:], '\'')
		if end < 0 {
			return nil, "", errAt(line, "unterminated single-quoted string")
		}
		return &node{kind: kindScalar, line: line, scalar: s[1 : 1+end], quoted: true}, s[2+end:], nil
	case '"':
		var b strings.Builder
		i := 1
		for i < len(s) {
			c := s[i]
			if c == '"' {
				return &node{kind: kindScalar, line: line, scalar: b.String(), quoted: true}, s[i+1:], nil
			}
			if c == '\\' {
				if i+1 >= len(s) {
					break
				}
				i++
				switch s[i] {
				case 'n':
					b.WriteByte('\n')
				case 't':
					b.WriteByte('\t')
				case '\\', '"':
					b.WriteByte(s[i])
				default:
					return nil, "", errAt(line, "unsupported escape \\%c", s[i])
				}
				i++
				continue
			}
			b.WriteByte(c)
			i++
		}
		return nil, "", errAt(line, "unterminated double-quoted string")
	default:
		// Plain scalar: inside flow it runs to the next delimiter; at
		// block level it runs to the end of the line.
		var raw, rest string
		if end := strings.IndexAny(s, ",]}"); inFlow && end >= 0 {
			raw, rest = s[:end], s[end:]
		} else {
			raw, rest = s, ""
		}
		raw = strings.TrimSpace(raw)
		if raw == "" {
			return nil, "", errAt(line, "missing value")
		}
		return &node{kind: kindScalar, line: line, scalar: raw}, rest, nil
	}
}

// ---- typed scalar accessors (the bind layer's vocabulary) ----

func (n *node) asString() (string, error) {
	if n.kind != kindScalar {
		return "", errAt(n.line, "expected a string, got %s", n.kindName())
	}
	return n.scalar, nil
}

func (n *node) asInt() (int64, error) {
	if n.kind != kindScalar || n.quoted {
		return 0, errAt(n.line, "expected an integer, got %s", n.kindName())
	}
	v, err := strconv.ParseInt(n.scalar, 10, 64)
	if err != nil {
		return 0, errAt(n.line, "expected an integer, got %q", n.scalar)
	}
	return v, nil
}

func (n *node) asBool() (bool, error) {
	if n.kind != kindScalar || n.quoted {
		return false, errAt(n.line, "expected true/false, got %s", n.kindName())
	}
	switch n.scalar {
	case "true":
		return true, nil
	case "false":
		return false, nil
	}
	return false, errAt(n.line, "expected true/false, got %q", n.scalar)
}

func (n *node) asMap() (*node, error) {
	if n.kind != kindMap {
		return nil, errAt(n.line, "expected a mapping, got %s", n.kindName())
	}
	return n, nil
}

func (n *node) asList() ([]*node, error) {
	if n.kind != kindList {
		return nil, errAt(n.line, "expected a list, got %s", n.kindName())
	}
	return n.list, nil
}

func (n *node) asStringList() ([]string, error) {
	items, err := n.asList()
	if err != nil {
		return nil, err
	}
	out := make([]string, len(items))
	for i, it := range items {
		s, err := it.asString()
		if err != nil {
			return nil, err
		}
		out[i] = s
	}
	return out, nil
}

// binder walks a kindMap node recording which keys were consumed, so
// unknown keys are rejected with their line number.
type binder struct {
	n    *node
	used map[string]bool
}

func bindMap(n *node) (*binder, error) {
	m, err := n.asMap()
	if err != nil {
		return nil, err
	}
	return &binder{n: m, used: map[string]bool{}}, nil
}

// get returns the child node for key, or nil when absent.
func (b *binder) get(key string) *node {
	b.used[key] = true
	return b.n.vals[key]
}

// need returns the child node for key or an error naming the map's line.
func (b *binder) need(key string) (*node, error) {
	if v := b.get(key); v != nil {
		return v, nil
	}
	return nil, errAt(b.n.line, "missing required key %q", key)
}

// finish rejects any keys the caller never consumed.
func (b *binder) finish(context string) error {
	for _, k := range b.n.keys {
		if !b.used[k] {
			return errAt(b.n.vals[k].line, "unknown key %q in %s", k, context)
		}
	}
	return nil
}
