package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"squirrel/internal/scenario"
)

// cmdScenario dispatches `squirrel scenario run|list`.
func cmdScenario(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: squirrel scenario run|list [flags] <file|dir>...")
	}
	switch args[0] {
	case "run":
		return cmdScenarioRun(args[1:])
	case "list":
		return cmdScenarioList(args[1:])
	default:
		return fmt.Errorf("unknown scenario subcommand %q (want run or list)", args[0])
	}
}

// collectSpecs expands file and directory arguments into a sorted list of
// .yaml scenario paths.
func collectSpecs(args []string) ([]string, error) {
	var paths []string
	for _, arg := range args {
		info, err := os.Stat(arg)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			paths = append(paths, arg)
			continue
		}
		entries, err := os.ReadDir(arg)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".yaml") {
				paths = append(paths, filepath.Join(arg, e.Name()))
			}
		}
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("no scenario files found")
	}
	sort.Strings(paths)
	return paths, nil
}

func cmdScenarioRun(args []string) error {
	fs := flag.NewFlagSet("scenario run", flag.ExitOnError)
	update := fs.Bool("update", false, "rewrite <spec>.golden transcripts instead of comparing")
	verbose := fs.Bool("v", false, "print full transcripts, not just verdicts")
	if err := fs.Parse(args); err != nil {
		return err
	}
	paths, err := collectSpecs(fs.Args())
	if err != nil {
		return err
	}
	failures := 0
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		spec, err := scenario.ParseSpec(data)
		if err != nil {
			failures++
			fmt.Printf("FAIL %s: parse: %v\n", path, err)
			continue
		}
		res, err := scenario.Run(spec)
		if err != nil {
			failures++
			fmt.Printf("FAIL %s: %v\n", path, err)
			continue
		}
		if *verbose {
			os.Stdout.Write(res.Transcript)
		}
		if res.Err != nil {
			failures++
			fmt.Printf("FAIL %s: %v\n", path, res.Err)
			continue
		}
		golden := path + ".golden"
		if *update {
			if err := os.WriteFile(golden, res.Transcript, 0o644); err != nil {
				return err
			}
			fmt.Printf("ok   %s (golden updated)\n", path)
			continue
		}
		want, err := os.ReadFile(golden)
		switch {
		case os.IsNotExist(err):
			fmt.Printf("ok   %s (no golden; use -update to record)\n", path)
		case err != nil:
			return err
		case string(want) != string(res.Transcript):
			failures++
			fmt.Printf("FAIL %s: transcript differs from %s (run with -update to accept)\n", path, golden)
		default:
			fmt.Printf("ok   %s\n", path)
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d of %d scenario(s) failed", failures, len(paths))
	}
	return nil
}

func cmdScenarioList(args []string) error {
	fs := flag.NewFlagSet("scenario list", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	paths, err := collectSpecs(fs.Args())
	if err != nil {
		return err
	}
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		spec, err := scenario.ParseSpec(data)
		if err != nil {
			fmt.Printf("%-40s INVALID: %v\n", path, err)
			continue
		}
		desc := spec.Description
		if desc == "" {
			desc = "(no description)"
		}
		fmt.Printf("%-40s %-28s %s\n", path, spec.Name, desc)
	}
	return nil
}
