package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"squirrel/internal/algebra"
	"squirrel/internal/clock"
	"squirrel/internal/core"
	"squirrel/internal/federate"
	"squirrel/internal/persist"
	"squirrel/internal/relation"
	"squirrel/internal/resilience"
	"squirrel/internal/sqlview"
	"squirrel/internal/vdp"
	"squirrel/internal/wal"
	"squirrel/internal/wire"
)

// repeatable flag value.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

// cmdServeMediator assembles a mediator against TCP-served source
// databases (schemas discovered via the catalog protocol), optionally
// restores a persisted snapshot, serves queries over TCP, runs the
// periodic update-transaction loop, and saves a snapshot on shutdown.
//
//	squirrel serve-mediator \
//	    -source 127.0.0.1:7070 -source 127.0.0.1:7071 \
//	    -view 'T=SELECT r1, s1 FROM R JOIN S ON r2 = s1' \
//	    -virtual 'T:s1' \
//	    -listen 127.0.0.1:7080 -flush 500ms -state state.json
func cmdServeMediator(args []string) error {
	fs := flag.NewFlagSet("serve-mediator", flag.ExitOnError)
	var sources, views, virtuals multiFlag
	fs.Var(&sources, "source", "source server address (repeatable)")
	fs.Var(&views, "view", "view definition NAME=SQL (repeatable)")
	fs.Var(&virtuals, "virtual", "virtual annotation NODE:attr,attr (repeatable)")
	listen := fs.String("listen", "127.0.0.1:7080", "mediator listen address")
	flush := fs.Duration("flush", 500*time.Millisecond, "update-transaction period (u_hold)")
	state := fs.String("state", "", "snapshot file: restored on start if present, saved on shutdown")
	walDir := fs.String("wal-dir", "",
		"write-ahead delta log directory: commits are durable before they publish, and restart "+
			"recovers checkpoint + log replay instead of rebuilding from the sources (empty = disabled)")
	walFsync := fs.String("wal-fsync", "commit",
		"WAL sync policy: commit (fsync before every publish), batch (one fsync per drained "+
			"group-commit batch), none (benchmarks only)")
	walCompact := fs.Int("wal-compact-every", 0,
		"checkpoint the store and truncate the log after this many logged commits "+
			"(0 = default 1024, negative = compact only on recovery and shutdown)")
	pollTimeout := fs.Duration("poll-timeout", 0, "per-attempt deadline for one source poll (0 = none)")
	retries := fs.Int("retry", 1, "max poll attempts per source (1 = no retry)")
	retryBase := fs.Duration("retry-base", 50*time.Millisecond, "base delay of the poll retry backoff")
	breaker := fs.String("breaker", "", "circuit breaker FAILURES:COOLDOWN (e.g. 5:2s; empty = disabled)")
	chaosSeed := fs.Int64("chaos-seed", 0, "seed for deterministic fault injection on source links (0 = off)")
	chaosErr := fs.Float64("chaos-err", 0.1, "per-operation error probability when -chaos-seed is set")
	workers := fs.Int("propagate-workers", 0,
		"staged-kernel worker pool for update propagation (0 = serial reference kernel)")
	backendName := fs.String("relation-backend", "blocks",
		"relation storage backend: blocks (columnar) or rows (boxed-tuple reference)")
	gcWindow := fs.Duration("group-commit-window", 0,
		"group-commit batching window: wake on announcement, absorb arrivals this long, "+
			"drain in one coalesced transaction (0 = periodic -flush loop)")
	gcMax := fs.Int("group-commit-max", 0,
		"close a group-commit batch early once this many announcements are queued (0 = window only)")
	exportAddr := fs.String("export-as-source", "",
		"serve this mediator's fully materialized exports as an autonomous source on this "+
			"address, so an upstream mediator can consume them with a plain -source "+
			"(DESIGN.md §11; empty = disabled)")
	exportName := fs.String("export-name", "med",
		"source name announced to upstream consumers when -export-as-source is set")
	metricsAddr := fs.String("metrics-addr", "",
		"observability HTTP address serving /metrics, /debug/vars, /debug/pprof (empty = disabled)")
	adapt := fs.Bool("adapt", false,
		"run the online annotation advisor loop (observe workload, re-annotate live)")
	adaptInterval := fs.Duration("adapt-interval", core.DefAdaptInterval,
		"advisor loop period when -adapt is set")
	adaptCooldown := fs.Duration("adapt-cooldown", 0,
		"minimum wall time between applied re-annotations (0 = twice -adapt-interval)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workers < 0 {
		return fmt.Errorf("bad -propagate-workers %d (want >= 0)", *workers)
	}
	backend, err := relation.ParseBackend(*backendName)
	if err != nil {
		return fmt.Errorf("bad -relation-backend: %w", err)
	}
	relation.SetDefaultBackend(backend)
	if *gcWindow < 0 {
		return fmt.Errorf("bad -group-commit-window %s (want >= 0)", *gcWindow)
	}
	resil := core.ResilienceConfig{
		PollTimeout: *pollTimeout,
		Retry:       resilience.RetryPolicy{MaxAttempts: *retries, BaseDelay: *retryBase},
	}
	if *breaker != "" {
		failures, cooldown, ok := strings.Cut(*breaker, ":")
		n, err := strconv.Atoi(failures)
		if !ok || err != nil || n < 1 {
			return fmt.Errorf("bad -breaker %q (want FAILURES:COOLDOWN, e.g. 5:2s)", *breaker)
		}
		cd, err := time.ParseDuration(cooldown)
		if err != nil {
			return fmt.Errorf("bad -breaker cooldown %q: %v", cooldown, err)
		}
		resil.Breaker = resilience.BreakerPolicy{Failures: n, Cooldown: cd}
	}
	var inj *resilience.Injector
	if *chaosSeed != 0 {
		inj = resilience.NewInjector(*chaosSeed)
		resil.Seed = *chaosSeed
	}
	if len(sources) == 0 || len(views) == 0 {
		return fmt.Errorf("serve-mediator needs at least one -source and one -view")
	}

	clk := &clock.Logical{}
	b := vdp.NewBuilder()
	conns := map[string]core.SourceConn{}
	var clients []*wire.Client
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()
	// Reconnects quarantine the source at the mediator: announcements
	// committed during the outage were lost, so the next flush resyncs it
	// by snapshot poll instead of trusting the (gapped) delta stream.
	// nameOf is fully populated before medRef is stored, so the callbacks
	// read it race-free.
	var medRef atomic.Pointer[core.Mediator]
	nameOf := map[string]string{}
	for _, addr := range sources {
		addr := addr
		c, err := wire.DialWith(addr, wire.DialOptions{
			Reconnect: true,
			Timeout:   *pollTimeout,
			OnReconnect: func() {
				if m := medRef.Load(); m != nil {
					m.QuarantineSource(nameOf[addr], "connection re-established; announcements may have been missed")
				}
			},
		})
		if err != nil {
			return fmt.Errorf("dialing source %s: %w", addr, err)
		}
		nameOf[addr] = c.Name()
		clients = append(clients, c)
		schemas, err := c.Catalog()
		if err != nil {
			return fmt.Errorf("catalog from %s: %w", addr, err)
		}
		for _, schema := range schemas {
			if err := b.AddSource(c.Name(), schema); err != nil {
				return err
			}
		}
		if inj != nil {
			inj.Set(c.Name(), resilience.Faults{ErrProb: *chaosErr})
			conns[c.Name()] = resilience.WrapSource(c, inj)
			fmt.Printf("source %q at %s: %d relations (chaos: err %.0f%%)\n",
				c.Name(), addr, len(schemas), *chaosErr*100)
			continue
		}
		conns[c.Name()] = c
		fmt.Printf("source %q at %s: %d relations\n", c.Name(), addr, len(schemas))
	}
	for _, v := range views {
		name, sql, ok := strings.Cut(v, "=")
		if !ok {
			return fmt.Errorf("bad -view %q (want NAME=SQL)", v)
		}
		if err := b.AddViewSQL(strings.TrimSpace(name), sql); err != nil {
			return err
		}
	}
	for _, v := range virtuals {
		node, attrs, ok := strings.Cut(v, ":")
		if !ok {
			return fmt.Errorf("bad -virtual %q (want NODE:attr,attr)", v)
		}
		b.Annotate(strings.TrimSpace(node), vdp.Ann(nil, strings.Split(attrs, ",")))
	}
	plan, err := b.Build()
	if err != nil {
		return err
	}
	fmt.Println("\nannotated VDP:")
	fmt.Print(plan)

	med, err := core.New(core.Config{VDP: plan, Sources: conns, Clock: clk,
		Resilience: resil, PropagateWorkers: *workers})
	if err != nil {
		return err
	}
	if *workers >= 1 {
		fmt.Printf("staged kernel: %d worker(s), %d stages, widest stage %d node(s)\n",
			*workers, plan.StageCount(), plan.MaxStageWidth())
	}
	// Announcement feeds hook up only after restore/recovery below: WAL
	// replay must drain an empty queue, and a live announcement arriving
	// mid-replay would be coalesced into the wrong version.
	var walMgr *wal.Manager
	var walInfo *wal.RecoveryInfo
	restored := false
	if *walDir != "" {
		policy, err := wal.ParseSyncPolicy(*walFsync)
		if err != nil {
			return fmt.Errorf("bad -wal-fsync: %w", err)
		}
		walMgr, err = wal.Open(wal.Options{
			Dir: *walDir, Policy: policy, CompactEvery: *walCompact,
			Metrics: med.Metrics(),
		})
		if err != nil {
			return err
		}
		has, err := walMgr.HasState()
		if err != nil {
			return err
		}
		if has {
			if walInfo, err = walMgr.Recover(med); err != nil {
				return fmt.Errorf("recovering WAL: %w", err)
			}
			restored = true
			fmt.Printf("recovered from WAL %s: checkpoint v%d", *walDir, walInfo.CheckpointVersion)
			if walInfo.Replayed > 0 {
				fmt.Printf(" + %d replayed commit(s)", walInfo.Replayed)
			}
			fmt.Printf(" → v%d", walInfo.Version)
			if walInfo.TornTail {
				fmt.Print(" (torn log tail discarded)")
			}
			if walInfo.Stopped != "" {
				fmt.Printf(" (replay stopped: %s)", walInfo.Stopped)
			}
			fmt.Printf("; ref′ %v\n", med.LastProcessed())
		}
	}
	if !restored && *state != "" {
		if f, err := os.Open(*state); err == nil {
			snap, err := persist.Load(f)
			f.Close()
			if err != nil {
				return fmt.Errorf("loading snapshot: %w", err)
			}
			if err := med.Restore(snap); err != nil {
				return fmt.Errorf("restoring snapshot: %w", err)
			}
			restored = true
			fmt.Printf("restored state from %s (ref′ %v)\n", *state, med.LastProcessed())
			if !vdp.AnnotationsEqual(med.Annotations(), plan.Annotations()) {
				fmt.Println("restored annotation differs from the construction default:")
				fmt.Print(med.VDP())
			}
		}
	}
	if !restored {
		if err := med.Initialize(); err != nil {
			return err
		}
	}
	if walMgr != nil && walInfo == nil {
		if err := walMgr.Start(med); err != nil {
			return err
		}
	}
	for _, c := range clients {
		c.OnAnnounce(med.OnAnnouncement)
	}
	medRef.Store(med)
	if walInfo != nil {
		// Wire feeds cannot replay announcements committed while we were
		// down, so quarantine every source: the first flush resyncs each
		// by compensated snapshot poll, and consistency holds across the
		// gap (same mechanism as a mid-run reconnect).
		for name := range conns {
			med.QuarantineSource(name, "recovered from WAL; commits during downtime unseen")
		}
	}

	// The export face installs before the update loop starts, so its
	// announcement stream is seq-dense from this mediator's first commit:
	// an upstream consumer never sees a silent baseline jump.
	if *exportAddr != "" {
		x, err := federate.New(med, *exportName)
		if err != nil {
			return fmt.Errorf("-export-as-source: %w", err)
		}
		expSrv := wire.NewBackendServer(x)
		ebound, err := expSrv.Start(*exportAddr)
		if err != nil {
			return err
		}
		defer expSrv.Close()
		fmt.Printf("exports served as source %q on %s: %s\n",
			*exportName, ebound, strings.Join(x.Relations(), " "))
	}

	var rt *core.Runtime
	if *gcWindow > 0 {
		rt, err = core.NewBatchedRuntime(med, *gcWindow, *gcMax)
	} else {
		rt, err = core.NewRuntime(med, *flush)
	}
	if err != nil {
		return err
	}
	if err := rt.Start(); err != nil {
		return err
	}
	defer rt.Stop()

	srv := wire.NewMediatorServer(med)

	// Attach an adaptive-annotation controller either way, so the readvise
	// subcommand always finds a workload window that opened at serve start:
	// with -adapt it also runs the closed loop; without, it is manual and
	// only acts when an operator asks.
	ctrl := core.NewAdaptController(med, core.AdaptConfig{
		Interval: *adaptInterval,
		Cooldown: *adaptCooldown,
		Manual:   !*adapt,
	})
	srv.SetAdaptController(ctrl)
	if *adapt {
		if err := ctrl.Start(); err != nil {
			return err
		}
		defer ctrl.Stop()
	}

	bound, err := srv.Start(*listen)
	if err != nil {
		return err
	}
	defer srv.Close()
	if rt.Batched() {
		fmt.Printf("\nmediator serving on %s (%s backend, group-commit window %s; ctrl-c to stop)\n",
			bound, backend, *gcWindow)
	} else {
		fmt.Printf("\nmediator serving on %s (%s backend, flush every %s; ctrl-c to stop)\n",
			bound, backend, *flush)
	}
	if *adapt {
		fmt.Printf("adaptive annotation: advising every %s\n", *adaptInterval)
	}

	if *metricsAddr != "" {
		msrv := wire.NewMetricsServer(med)
		mbound, err := msrv.Start(*metricsAddr)
		if err != nil {
			return err
		}
		defer msrv.Close()
		fmt.Printf("observability on http://%s (/metrics, /debug/vars, /debug/pprof)\n", mbound)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig

	if err := rt.Stop(); err != nil {
		fmt.Fprintf(os.Stderr, "squirrel: final flush: %v\n", err)
	}
	if walMgr != nil {
		if err := walMgr.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "squirrel: closing WAL: %v\n", err)
		} else {
			fmt.Printf("WAL checkpointed at v%d\n", med.StoreVersion())
		}
	}
	if *state != "" {
		snap, err := med.Snapshot()
		if err != nil {
			return err
		}
		// Atomic replace (tmp + fsync + rename): a crash mid-save leaves
		// the previous snapshot intact, never a torn file.
		if err := persist.SaveFile(*state, snap); err != nil {
			return err
		}
		fmt.Printf("state saved to %s\n", *state)
	}
	return nil
}

// cmdQueryView runs one query against a mediator server.
func cmdQueryView(args []string) error {
	fs := flag.NewFlagSet("query-view", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7080", "mediator server address")
	export := fs.String("export", "", "export relation name")
	attrs := fs.String("attrs", "", "comma-separated projection (default: all)")
	cond := fs.String("where", "", "condition, e.g. 's1 = 10'")
	sync := fs.Bool("sync", false, "drain the mediator's update queue first")
	stale := fs.Bool("stale", false, "accept a degraded (stale-bounded) answer if a source is down")
	maxStale := fs.Int64("max-staleness", 0, "refuse degraded answers staler than this bound (0 = any)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *export == "" {
		return fmt.Errorf("query-view needs -export")
	}
	c, err := wire.DialMediator(*addr)
	if err != nil {
		return err
	}
	defer c.Close()
	if *sync {
		n, err := c.Sync()
		if err != nil {
			return err
		}
		fmt.Printf("drained %d update transaction(s)\n", n)
	}
	var attrList []string
	if *attrs != "" {
		attrList = strings.Split(*attrs, ",")
	}
	var pred algebra.Expr
	if *cond != "" {
		pred, err = sqlview.ParseExpr(*cond)
		if err != nil {
			return fmt.Errorf("bad -where %q: %w", *cond, err)
		}
	}
	if *stale {
		ans, committed, staleness, err := c.QueryStale(*export, attrList, pred, clock.Time(*maxStale))
		if err != nil {
			return err
		}
		if len(staleness) > 0 {
			fmt.Printf("DEGRADED answer (staleness bounds: %v)\n", staleness)
		}
		fmt.Printf("query transaction t=%d:\n%s", committed, ans)
		return nil
	}
	ans, committed, err := c.Query(*export, attrList, pred)
	if err != nil {
		return err
	}
	fmt.Printf("query transaction t=%d:\n%s", committed, ans)
	return nil
}

// cmdSubscribe registers for a view export's push stream on a running
// mediator and prints each frame as one NDJSON line: first a snapshot of
// the export at the pinned store version, then one delta frame per commit
// (tagged with the committed version, stamp, and Reflect vector). With
// -reconnect the client redials on disconnect and resumes from its last
// delivered version, so the stream stays gap-free across outages.
//
//	squirrel subscribe -addr 127.0.0.1:7080 -export T -max-lag 100 | jq .
func cmdSubscribe(args []string) error {
	fs := flag.NewFlagSet("subscribe", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7080", "mediator server address")
	export := fs.String("export", "", "export relation name (must be fully materialized)")
	from := fs.Uint64("from", 0, "resume after this committed store version (0 = start with a snapshot)")
	maxQueue := fs.Int("max-queue", 0,
		"server-side bound on undelivered frames; at the bound new commits coalesce "+
			"into the newest frame (0 = server default 256)")
	maxLag := fs.Int64("max-lag", 0,
		"staleness bound in clock ticks (Theorem 7.2): a backlog older than this is "+
			"dropped and the stream resyncs from a snapshot (0 = unbounded)")
	count := fs.Int("n", 0, "stop after this many frames (0 = stream until interrupted)")
	reconnect := fs.Bool("reconnect", true,
		"redial on disconnect and resume from the last delivered version")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *export == "" {
		return fmt.Errorf("subscribe needs -export")
	}
	sc, err := wire.SubscribeView(*addr, *export, wire.SubOptions{
		FromVersion: *from, MaxQueue: *maxQueue, MaxLag: clock.Time(*maxLag),
		Reconnect: *reconnect,
	})
	if err != nil {
		return err
	}
	defer sc.Close()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		sc.Close()
	}()
	enc := json.NewEncoder(os.Stdout)
	for n := 0; *count == 0 || n < *count; n++ {
		f, err := sc.Next()
		if err != nil {
			if strings.Contains(err.Error(), "client closed") {
				return nil // interrupted: a clean end of stream
			}
			return err
		}
		if err := enc.Encode(wire.EncodeSubFrame(f)); err != nil {
			return err
		}
	}
	return nil
}

// cmdReadvise triggers one on-demand advisor round on a running mediator
// (the §5.3 loop, operator-paced): observe the workload window since the
// last round, ask the advisor, and apply the implied annotation flips —
// or, with -dry-run, only report them with their justifications.
func cmdReadvise(args []string) error {
	fs := flag.NewFlagSet("readvise", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7080", "mediator server address")
	dry := fs.Bool("dry-run", false, "report what would change without applying anything")
	if err := fs.Parse(args); err != nil {
		return err
	}
	c, err := wire.DialMediator(*addr)
	if err != nil {
		return err
	}
	defer c.Close()
	dec, err := c.Readvise(*dry)
	if err != nil {
		return err
	}

	fmt.Printf("window: %d query transaction(s)\n", dec.Queries)
	if len(dec.Profile.AccessFreq) > 0 {
		attrs := make([]string, 0, len(dec.Profile.AccessFreq))
		for a := range dec.Profile.AccessFreq {
			attrs = append(attrs, a)
		}
		sort.Strings(attrs)
		parts := make([]string, len(attrs))
		for i, a := range attrs {
			parts[i] = fmt.Sprintf("%s=%.2f", a, dec.Profile.AccessFreq[a])
		}
		fmt.Printf("access freq:  %s\n", strings.Join(parts, " "))
	}
	if len(dec.Profile.UpdateShare) > 0 {
		srcs := make([]string, 0, len(dec.Profile.UpdateShare))
		for s := range dec.Profile.UpdateShare {
			srcs = append(srcs, s)
		}
		sort.Strings(srcs)
		parts := make([]string, len(srcs))
		for i, s := range srcs {
			parts[i] = fmt.Sprintf("%s=%.2f", s, dec.Profile.UpdateShare[s])
		}
		fmt.Printf("update share: %s\n", strings.Join(parts, " "))
	}
	for _, r := range dec.Reasons {
		fmt.Printf("advisor: %s\n", r)
	}
	if len(dec.Flips) == 0 {
		fmt.Println("no changes: advice matches the live annotation")
		return nil
	}
	for _, f := range dec.Flips {
		fmt.Printf("flip: %s\n", f)
	}
	switch {
	case dec.Applied:
		fmt.Printf("APPLIED %d flip(s)\n", len(dec.Flips))
	case *dry:
		fmt.Printf("dry run: %d flip(s) would be applied\n", len(dec.Flips))
	default:
		fmt.Printf("not applied: %s\n", dec.Skipped)
	}
	return nil
}

// cmdStats prints a mediator server's operation counters and per-source
// health (breaker state, retries, quarantines).
func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7080", "mediator server address")
	if err := fs.Parse(args); err != nil {
		return err
	}
	c, err := wire.DialMediator(*addr)
	if err != nil {
		return err
	}
	defer c.Close()
	st, err := c.Stats()
	if err != nil {
		return err
	}
	fmt.Printf("transactions:   %d update, %d query (%d key-based temps), %d resync\n",
		st.UpdateTxns, st.QueryTxns, st.KeyBasedTemps, st.Resyncs)
	fmt.Printf("propagation:    %d atoms, %d source polls, %d tuples polled\n",
		st.AtomsPropagated, st.SourcePolls, st.TuplesPolled)
	fmt.Printf("staged kernel:  %d stages run, %d nodes maintained, %d txn retries\n",
		st.KernelStages, st.KernelStageNodes, st.UpdateTxnRetries)
	fmt.Printf("fault boundary: %d poll failures, %d retries, %d breaker fast-fails\n",
		st.PollFailures, st.PollRetries, st.BreakerFastFails)
	fmt.Printf("degradation:    %d degraded queries, %d gaps detected\n",
		st.DegradedQueries, st.GapsDetected)
	fmt.Printf("queue:          %d high-water; store version %d (%d published)\n",
		st.QueueHighWater, st.CurrentVersion, st.VersionsPublished)
	fmt.Printf("subscriptions:  %d active, %d frames delivered, %d coalesces, %d lag drops, %d snapshot resyncs\n",
		st.ActiveSubscribers, st.SubFramesDelivered, st.SubCoalesces, st.SubLagDrops, st.SubSnapshotResyncs)
	names := make([]string, 0, len(st.Sources))
	for name := range st.Sources {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := st.Sources[name]
		line := fmt.Sprintf("source %-12s %s  breaker=%s trips=%d last-contact=%d seq=%d",
			name, h.Contributor, h.Breaker, h.Trips, h.LastContact, h.LastSeq)
		if h.Quarantined != "" {
			line += fmt.Sprintf("  QUARANTINED (%s; %d penned)", h.Quarantined, h.PennedAnnouncements)
		}
		fmt.Println(line)
	}
	return nil
}
