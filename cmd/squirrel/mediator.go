package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"squirrel/internal/algebra"
	"squirrel/internal/clock"
	"squirrel/internal/core"
	"squirrel/internal/persist"
	"squirrel/internal/sqlview"
	"squirrel/internal/vdp"
	"squirrel/internal/wire"
)

// repeatable flag value.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

// cmdServeMediator assembles a mediator against TCP-served source
// databases (schemas discovered via the catalog protocol), optionally
// restores a persisted snapshot, serves queries over TCP, runs the
// periodic update-transaction loop, and saves a snapshot on shutdown.
//
//	squirrel serve-mediator \
//	    -source 127.0.0.1:7070 -source 127.0.0.1:7071 \
//	    -view 'T=SELECT r1, s1 FROM R JOIN S ON r2 = s1' \
//	    -virtual 'T:s1' \
//	    -listen 127.0.0.1:7080 -flush 500ms -state state.json
func cmdServeMediator(args []string) error {
	fs := flag.NewFlagSet("serve-mediator", flag.ExitOnError)
	var sources, views, virtuals multiFlag
	fs.Var(&sources, "source", "source server address (repeatable)")
	fs.Var(&views, "view", "view definition NAME=SQL (repeatable)")
	fs.Var(&virtuals, "virtual", "virtual annotation NODE:attr,attr (repeatable)")
	listen := fs.String("listen", "127.0.0.1:7080", "mediator listen address")
	flush := fs.Duration("flush", 500*time.Millisecond, "update-transaction period (u_hold)")
	state := fs.String("state", "", "snapshot file: restored on start if present, saved on shutdown")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(sources) == 0 || len(views) == 0 {
		return fmt.Errorf("serve-mediator needs at least one -source and one -view")
	}

	clk := &clock.Logical{}
	b := vdp.NewBuilder()
	conns := map[string]core.SourceConn{}
	var clients []*wire.Client
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()
	for _, addr := range sources {
		c, err := wire.Dial(addr)
		if err != nil {
			return fmt.Errorf("dialing source %s: %w", addr, err)
		}
		clients = append(clients, c)
		schemas, err := c.Catalog()
		if err != nil {
			return fmt.Errorf("catalog from %s: %w", addr, err)
		}
		for _, schema := range schemas {
			if err := b.AddSource(c.Name(), schema); err != nil {
				return err
			}
		}
		conns[c.Name()] = c
		fmt.Printf("source %q at %s: %d relations\n", c.Name(), addr, len(schemas))
	}
	for _, v := range views {
		name, sql, ok := strings.Cut(v, "=")
		if !ok {
			return fmt.Errorf("bad -view %q (want NAME=SQL)", v)
		}
		if err := b.AddViewSQL(strings.TrimSpace(name), sql); err != nil {
			return err
		}
	}
	for _, v := range virtuals {
		node, attrs, ok := strings.Cut(v, ":")
		if !ok {
			return fmt.Errorf("bad -virtual %q (want NODE:attr,attr)", v)
		}
		b.Annotate(strings.TrimSpace(node), vdp.Ann(nil, strings.Split(attrs, ",")))
	}
	plan, err := b.Build()
	if err != nil {
		return err
	}
	fmt.Println("\nannotated VDP:")
	fmt.Print(plan)

	med, err := core.New(core.Config{VDP: plan, Sources: conns, Clock: clk})
	if err != nil {
		return err
	}
	for _, c := range clients {
		c.OnAnnounce(med.OnAnnouncement)
	}

	restored := false
	if *state != "" {
		if f, err := os.Open(*state); err == nil {
			snap, err := persist.Load(f)
			f.Close()
			if err != nil {
				return fmt.Errorf("loading snapshot: %w", err)
			}
			if err := med.Restore(snap); err != nil {
				return fmt.Errorf("restoring snapshot: %w", err)
			}
			restored = true
			fmt.Printf("restored state from %s (ref′ %v)\n", *state, med.LastProcessed())
		}
	}
	if !restored {
		if err := med.Initialize(); err != nil {
			return err
		}
	}

	rt, err := core.NewRuntime(med, *flush)
	if err != nil {
		return err
	}
	if err := rt.Start(); err != nil {
		return err
	}
	defer rt.Stop()

	srv := wire.NewMediatorServer(med)
	bound, err := srv.Start(*listen)
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("\nmediator serving on %s (flush every %s; ctrl-c to stop)\n", bound, *flush)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig

	if err := rt.Stop(); err != nil {
		fmt.Fprintf(os.Stderr, "squirrel: final flush: %v\n", err)
	}
	if *state != "" {
		snap, err := med.Snapshot()
		if err != nil {
			return err
		}
		f, err := os.Create(*state)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := persist.Save(f, snap); err != nil {
			return err
		}
		fmt.Printf("state saved to %s\n", *state)
	}
	return nil
}

// cmdQueryView runs one query against a mediator server.
func cmdQueryView(args []string) error {
	fs := flag.NewFlagSet("query-view", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7080", "mediator server address")
	export := fs.String("export", "", "export relation name")
	attrs := fs.String("attrs", "", "comma-separated projection (default: all)")
	cond := fs.String("where", "", "condition, e.g. 's1 = 10'")
	sync := fs.Bool("sync", false, "drain the mediator's update queue first")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *export == "" {
		return fmt.Errorf("query-view needs -export")
	}
	c, err := wire.DialMediator(*addr)
	if err != nil {
		return err
	}
	defer c.Close()
	if *sync {
		n, err := c.Sync()
		if err != nil {
			return err
		}
		fmt.Printf("drained %d update transaction(s)\n", n)
	}
	var attrList []string
	if *attrs != "" {
		attrList = strings.Split(*attrs, ",")
	}
	var pred algebra.Expr
	if *cond != "" {
		pred, err = sqlview.ParseExpr(*cond)
		if err != nil {
			return fmt.Errorf("bad -where %q: %w", *cond, err)
		}
	}
	ans, committed, err := c.Query(*export, attrList, pred)
	if err != nil {
		return err
	}
	fmt.Printf("query transaction t=%d:\n%s", committed, ans)
	return nil
}
