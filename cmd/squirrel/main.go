// Command squirrel is the CLI for the Squirrel data-integration
// reproduction (Hull & Zhou, SIGMOD 1996):
//
//	squirrel bench [-e E1,...]   regenerate the experiment tables (E1–E22)
//	squirrel demo                run the paper's running example end to end
//	squirrel figure2             print the Figure 2 scenario and verdicts
//	squirrel serve-source        serve a demo source database over TCP
//	squirrel serve-mediator      assemble and serve a mediator over TCP sources
//	squirrel query               one-shot query against TCP-served sources
//	squirrel query-view          query a running mediator's exports
//	squirrel subscribe           stream a view export's push frames as NDJSON
//	squirrel readvise            trigger one annotation-advisor round
//	squirrel scenario            run declarative YAML scenarios on virtual time
//	squirrel stats|metrics|events  operator introspection of a mediator
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"squirrel/internal/experiments"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "bench":
		err = cmdBench(os.Args[2:])
	case "demo":
		err = cmdDemo(os.Args[2:])
	case "figure2":
		err = cmdFigure2(os.Args[2:])
	case "serve-source":
		err = cmdServeSource(os.Args[2:])
	case "serve-mediator":
		err = cmdServeMediator(os.Args[2:])
	case "query-view":
		err = cmdQueryView(os.Args[2:])
	case "subscribe":
		err = cmdSubscribe(os.Args[2:])
	case "query":
		err = cmdQuery(os.Args[2:])
	case "readvise":
		err = cmdReadvise(os.Args[2:])
	case "scenario":
		err = cmdScenario(os.Args[2:])
	case "stats":
		err = cmdStats(os.Args[2:])
	case "metrics":
		err = cmdMetrics(os.Args[2:])
	case "events":
		err = cmdEvents(os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "squirrel: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "squirrel: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: squirrel <command> [flags]

commands:
  bench [-e E1,E4,...]       run the reproduction experiments (default: all)
  demo                       run the paper's running example (Examples 2.1-2.3)
  figure2                    print the Figure 2 scenario and its verdicts
  serve-source -addr :7070   serve the demo source database over TCP
  serve-mediator ...         assemble and serve a mediator over TCP sources
      [-poll-timeout D] [-retry N] [-retry-base D] [-breaker N:COOLDOWN]
      [-chaos-seed S [-chaos-err P]]
                             fault boundary: per-attempt poll deadline, retry
                             with backoff, per-source circuit breaker, and
                             deterministic fault injection on source links
      [-metrics-addr :9090]  observability HTTP endpoint: /metrics (Prometheus
                             text), /debug/vars (JSON snapshot), /debug/pprof
      [-adapt [-adapt-interval D] [-adapt-cooldown D]]
                             online annotation advisor loop: observe the live
                             workload and re-annotate without downtime
      [-export-as-source ADDR [-export-name NAME]]
                             serve the fully materialized exports as an
                             autonomous source, so another mediator can stack
                             on top with a plain -source (tiered federation)
  query -addr HOST:PORT ...  one-shot snapshot query against a source server
  query-view -addr ... -export V [-attrs a,b] [-where 'a = 1'] [-sync]
      [-stale [-max-staleness N]]
                             query a running mediator; -stale accepts a
                             degraded answer (bounded staleness) if a source
                             is down
  subscribe -addr ... -export V [-from N] [-max-queue N] [-max-lag N] [-n N]
                             stream a view export's subscription frames as
                             NDJSON: one snapshot, then one delta frame per
                             commit; -from resumes after a version, -max-lag
                             bounds staleness (snapshot-resync past it)
  readvise -addr HOST:PORT [-dry-run]
                             trigger one advisor round on a running mediator:
                             observe, advise, and apply (or preview) the
                             annotation flips
  scenario run [-update] [-v] <file|dir>...
                             run declarative YAML scenarios on virtual time
                             and compare byte-identical golden transcripts
  scenario list <file|dir>...
                             list scenario names and descriptions
  stats -addr HOST:PORT      print a mediator's counters and source health
  metrics -addr HOST:PORT [-prom]
                             print a mediator's latency histograms and
                             counters (-prom: raw Prometheus exposition)
  events -addr HOST:PORT [-n N] [-type T]
                             tail a mediator's structured event ring buffer
`)
}

func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	which := fs.String("e", "", "comma-separated experiment ids (default: all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ids := experiments.IDs()
	if *which != "" {
		ids = strings.Split(*which, ",")
	}
	fmt.Printf("Squirrel reproduction experiments (%s)\n", strings.Join(ids, ", "))
	for _, id := range ids {
		id = strings.TrimSpace(id)
		run, ok := experiments.Registry[id]
		if !ok {
			return fmt.Errorf("unknown experiment %q (have %s)", id, strings.Join(experiments.IDs(), ", "))
		}
		if err := run(os.Stdout); err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
	}
	return nil
}
