package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"squirrel/internal/metrics"
	"squirrel/internal/wire"
)

// cmdMetrics fetches a mediator server's instrument snapshot over the
// query protocol and renders it — as a human-readable latency table by
// default, or the raw Prometheus exposition with -prom (identical to a
// /metrics scrape, for piping into promtool and friends).
func cmdMetrics(args []string) error {
	fs := flag.NewFlagSet("metrics", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7080", "mediator server address")
	prom := fs.Bool("prom", false, "print the raw Prometheus text exposition")
	if err := fs.Parse(args); err != nil {
		return err
	}
	c, err := wire.DialMediator(*addr)
	if err != nil {
		return err
	}
	defer c.Close()
	snap, err := c.Metrics()
	if err != nil {
		return err
	}
	if *prom {
		return metrics.WriteSnapshotPrometheus(os.Stdout, *snap)
	}
	printSnapshot(snap)
	return nil
}

func printSnapshot(snap *metrics.Snapshot) {
	if len(snap.Histograms) > 0 {
		fmt.Printf("%-60s %10s %12s %12s %12s\n", "latency", "count", "mean", "p50", "p99")
		for _, name := range sortedKeys(snap.Histograms) {
			h := snap.Histograms[name]
			if h.Count == 0 {
				continue
			}
			fmt.Printf("%-60s %10d %12s %12s %12s\n", name, h.Count,
				formatSeconds(name, h.Mean()), formatSeconds(name, h.Quantile(0.5)),
				formatSeconds(name, h.Quantile(0.99)))
		}
	}
	if len(snap.Counters) > 0 {
		fmt.Printf("\n%-60s %10s\n", "counter", "value")
		for _, name := range sortedKeys(snap.Counters) {
			fmt.Printf("%-60s %10d\n", name, snap.Counters[name])
		}
	}
	if len(snap.Gauges) > 0 {
		fmt.Printf("\n%-60s %10s\n", "gauge", "value")
		for _, name := range sortedKeys(snap.Gauges) {
			fmt.Printf("%-60s %10d\n", name, snap.Gauges[name])
		}
	}
	fmt.Printf("\nevents: %d retained of %d emitted (squirrel events to list)\n",
		len(snap.Events), snap.EventsTotal)
}

// formatSeconds renders a histogram statistic: as a duration for the
// *_seconds families, as a plain number for tick-valued ones.
func formatSeconds(series string, v float64) string {
	if strings.Contains(series, "_seconds") {
		return fmt.Sprintf("%.3fms", v*1000)
	}
	return fmt.Sprintf("%.1f", v)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// cmdEvents tails a mediator server's structured event ring buffer.
func cmdEvents(args []string) error {
	fs := flag.NewFlagSet("events", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7080", "mediator server address")
	n := fs.Int("n", 50, "how many recent events to fetch")
	typ := fs.String("type", "", "only events of this type (e.g. poll, breaker, resync)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	c, err := wire.DialMediator(*addr)
	if err != nil {
		return err
	}
	defer c.Close()
	evs, total, err := c.Events(*n)
	if err != nil {
		return err
	}
	shown := 0
	for _, ev := range evs {
		if *typ != "" && ev.Type != *typ {
			continue
		}
		fmt.Println(ev)
		shown++
	}
	fmt.Printf("(%d shown, %d emitted since start)\n", shown, total)
	return nil
}
