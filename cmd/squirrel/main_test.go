package main

import (
	"os"
	"strings"
	"testing"
)

// captureStdout redirects os.Stdout around fn.
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	errc := make(chan error, 1)
	outc := make(chan string, 1)
	go func() {
		buf := make([]byte, 0, 1<<16)
		tmp := make([]byte, 4096)
		for {
			n, err := r.Read(tmp)
			buf = append(buf, tmp[:n]...)
			if err != nil {
				break
			}
		}
		outc <- string(buf)
	}()
	go func() { errc <- fn() }()
	ferr := <-errc
	w.Close()
	os.Stdout = old
	out := <-outc
	r.Close()
	return out, ferr
}

func TestCmdDemo(t *testing.T) {
	out, err := captureStdout(t, func() error { return cmdDemo(nil) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"annotated VDP", "VDP-rulebase", "consistency check (Theorem 7.1): OK"} {
		if !strings.Contains(out, want) {
			t.Errorf("demo output missing %q", want)
		}
	}
}

func TestCmdFigure2(t *testing.T) {
	out, err := captureStdout(t, func() error { return cmdFigure2(nil) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "pseudo-consistent: true   consistent: false") {
		t.Errorf("figure2 verdicts missing:\n%s", out)
	}
}

func TestCmdBenchSingle(t *testing.T) {
	if testing.Short() {
		t.Skip("bench is slow")
	}
	out, err := captureStdout(t, func() error { return cmdBench([]string{"-e", "E4"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "E4 — Figure 2") {
		t.Errorf("bench output missing E4 table:\n%s", out)
	}
	if _, err := captureStdout(t, func() error { return cmdBench([]string{"-e", "NOPE"}) }); err == nil {
		t.Errorf("unknown experiment must fail")
	}
}

func TestCmdQueryViewValidation(t *testing.T) {
	if err := cmdQueryView([]string{"-export", ""}); err == nil {
		t.Errorf("missing export must fail")
	}
	if err := cmdQueryView([]string{"-export", "V", "-addr", "127.0.0.1:1", "-where", "a ="}); err == nil {
		t.Errorf("bad where must fail before dialing... or dial fails; either way an error")
	}
}

func TestCmdServeMediatorValidation(t *testing.T) {
	if err := cmdServeMediator(nil); err == nil {
		t.Errorf("missing sources/views must fail")
	}
	if err := cmdServeMediator([]string{"-source", "127.0.0.1:1", "-view", "badformat"}); err == nil {
		t.Errorf("dial failure or bad view must fail")
	}
}
