package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"squirrel"
	"squirrel/internal/algebra"
	"squirrel/internal/checker"
	"squirrel/internal/clock"
	"squirrel/internal/relation"
	"squirrel/internal/source"
	"squirrel/internal/sqlview"
	"squirrel/internal/wire"
)

// cmdDemo runs the paper's running example interactively.
func cmdDemo(args []string) error {
	fs := flag.NewFlagSet("demo", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	sys := squirrel.NewSystem()
	db1 := sys.AddSource("db1")
	db1.MustLoadTable(squirrel.Relations(
		squirrel.MustSchema("R", []squirrel.Attribute{
			{Name: "r1", Type: squirrel.KindInt}, {Name: "r2", Type: squirrel.KindInt},
			{Name: "r3", Type: squirrel.KindInt}, {Name: "r4", Type: squirrel.KindInt}}, "r1"),
		squirrel.T(1, 10, 5, 100), squirrel.T(2, 10, 120, 100),
		squirrel.T(3, 20, 7, 100), squirrel.T(4, 30, 9, 50)))
	db2 := sys.AddSource("db2")
	db2.MustLoadTable(squirrel.Relations(
		squirrel.MustSchema("S", []squirrel.Attribute{
			{Name: "s1", Type: squirrel.KindInt}, {Name: "s2", Type: squirrel.KindInt},
			{Name: "s3", Type: squirrel.KindInt}}, "s1"),
		squirrel.T(10, 1, 20), squirrel.T(20, 2, 40), squirrel.T(30, 3, 80)))
	sys.MustDefineView("T",
		`SELECT r1, r3, s1, s2 FROM R JOIN S ON r2 = s1 WHERE r4 = 100 AND s3 < 50`)
	sys.Annotate("T", []string{"r1", "s1"}, []string{"r3", "s2"})
	sys.AnnotateAllVirtual("R'", []string{"r1", "r2", "r3"})
	if err := sys.Start(); err != nil {
		return err
	}
	fmt.Println("annotated VDP (Example 2.3 configuration):")
	fmt.Print(sys.Plan())
	fmt.Println("\nVDP-rulebase (§5.2):")
	fmt.Print(sys.Plan().Rulebase())

	ans, err := sys.Query(`SELECT r1, s1 FROM T`)
	if err != nil {
		return err
	}
	fmt.Printf("\nπ_(r1,s1) T — served from the store:\n%s", ans)

	if _, err := db1.Insert("R", squirrel.T(5, 20, 11, 100)); err != nil {
		return err
	}
	if err := sys.SyncAll(); err != nil {
		return err
	}
	cond, err := squirrel.ParseCondition("r3 < 100")
	if err != nil {
		return err
	}
	res, err := sys.QueryExport("T", []string{"r3", "s1"}, cond,
		squirrel.QueryOptions{KeyBased: squirrel.KeyBasedAuto})
	if err != nil {
		return err
	}
	fmt.Printf("\nafter ΔR, π_(r3,s1) σ_(r3<100) T — key-based=%v, polls=%d:\n%s",
		res.KeyBased, res.Polled, res.Answer)

	if err := sys.CheckConsistency(); err != nil {
		return fmt.Errorf("consistency check failed: %w", err)
	}
	fmt.Println("\nconsistency check (Theorem 7.1): OK")
	return nil
}

// cmdFigure2 prints the Figure 2 scenario and its verdicts.
func cmdFigure2(args []string) error {
	fs := flag.NewFlagSet("figure2", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	sc, table := checker.Figure2Scenario()
	fmt.Println("Figure 2 scenario (single source DB, view S = π₂(R)):")
	fmt.Print(table)
	pseudo, err := sc.PseudoConsistent()
	if err != nil {
		return err
	}
	consistent, err := sc.Consistent()
	if err != nil {
		return err
	}
	fmt.Printf("\npseudo-consistent: %v   consistent: %v\n", pseudo, consistent)
	fmt.Println("(Remark 3.1: pseudo-consistency does not imply consistency)")
	return nil
}

// cmdServeSource serves the demo source database db1 (relation R) over
// TCP, for use with `squirrel query` and `squirrel serve-mediator`.
func cmdServeSource(args []string) error {
	fs := flag.NewFlagSet("serve-source", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7070", "listen address for the demo source database")
	if err := fs.Parse(args); err != nil {
		return err
	}
	clk := &clock.Logical{}
	db1 := source.NewDB("db1", clk)
	r := relation.NewSet(relation.MustSchema("R", []relation.Attribute{
		{Name: "r1", Type: relation.KindInt}, {Name: "r2", Type: relation.KindInt},
		{Name: "r3", Type: relation.KindInt}, {Name: "r4", Type: relation.KindInt}}, "r1"))
	r.Insert(relation.T(1, 10, 5, 100))
	r.Insert(relation.T(2, 10, 120, 100))
	r.Insert(relation.T(3, 20, 7, 100))
	if err := db1.LoadRelation(r); err != nil {
		return err
	}
	srv := wire.NewSourceServer(db1)
	bound, err := srv.Start(*addr)
	if err != nil {
		return err
	}
	fmt.Printf("serving source database %q on %s (ctrl-c to stop)\n", db1.Name(), bound)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	return srv.Close()
}

// cmdQuery runs one snapshot query against a TCP source server.
func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7070", "source server address")
	rel := fs.String("rel", "R", "relation to query")
	attrs := fs.String("attrs", "", "comma-separated projection (default: all)")
	cond := fs.String("where", "", "condition, e.g. 'r4 = 100'")
	if err := fs.Parse(args); err != nil {
		return err
	}
	c, err := wire.Dial(*addr)
	if err != nil {
		return err
	}
	defer c.Close()
	var attrList []string
	if *attrs != "" {
		attrList = strings.Split(*attrs, ",")
	}
	var pred algebra.Expr
	if *cond != "" {
		pred, err = sqlview.ParseExpr(*cond)
		if err != nil {
			return err
		}
	}
	answers, asOf, err := c.QueryMulti([]source.QuerySpec{{Rel: *rel, Attrs: attrList, Cond: pred}})
	if err != nil {
		return err
	}
	fmt.Printf("source %q, state as of t=%d:\n%s", c.Name(), asOf, answers[0])
	return nil
}
