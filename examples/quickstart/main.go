// Command quickstart demonstrates the Squirrel public API end to end: two
// autonomous source databases, an integrated view defined in SQL, fully
// materialized support with incremental maintenance, and a consistency
// check over the recorded trace.
//
// This is the paper's running example (Example 2.1, Figure 1):
//
//	R(r1,r2,r3,r4) at db1, S(s1,s2,s3) at db2
//	T = π_{r1,r3,s1,s2}( σ_{r4=100} R ⋈_{r2=s1} σ_{s3<50} S )
package main

import (
	"fmt"
	"log"

	"squirrel"
)

func main() {
	sys := squirrel.NewSystem()

	// Source database 1 holds R; source database 2 holds S.
	db1 := sys.AddSource("db1")
	db1.MustLoadTable(squirrel.Relations(
		squirrel.MustSchema("R", []squirrel.Attribute{
			{Name: "r1", Type: squirrel.KindInt},
			{Name: "r2", Type: squirrel.KindInt},
			{Name: "r3", Type: squirrel.KindInt},
			{Name: "r4", Type: squirrel.KindInt},
		}, "r1"),
		squirrel.T(1, 10, 5, 100),
		squirrel.T(2, 10, 120, 100),
		squirrel.T(3, 20, 7, 100),
		squirrel.T(4, 30, 9, 50),
	))
	db2 := sys.AddSource("db2")
	db2.MustLoadTable(squirrel.Relations(
		squirrel.MustSchema("S", []squirrel.Attribute{
			{Name: "s1", Type: squirrel.KindInt},
			{Name: "s2", Type: squirrel.KindInt},
			{Name: "s3", Type: squirrel.KindInt},
		}, "s1"),
		squirrel.T(10, 1, 20),
		squirrel.T(20, 2, 40),
		squirrel.T(30, 3, 80),
	))

	// The integrated view, in the paper's notation:
	// T = π_{r1,r3,s1,s2}(σ_{r4=100} R ⋈_{r2=s1} σ_{s3<50} S).
	sys.MustDefineView("T",
		`SELECT r1, r3, s1, s2 FROM R JOIN S ON r2 = s1 WHERE r4 = 100 AND s3 < 50`)

	sys.MustStart()
	fmt.Println("Annotated VDP:")
	fmt.Print(sys.Plan())

	rows, err := sys.Query(`SELECT r1, r3, s1, s2 FROM T`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nInitial view contents:")
	fmt.Print(rows)

	// Source updates propagate incrementally: no recomputation, no
	// polling (fully materialized support, Example 2.1).
	fmt.Println("\ndb1 commits: insert R(5, 20, 11, 100); db2 commits: delete S(10, 1, 20)")
	if _, err := db1.Insert("R", squirrel.T(5, 20, 11, 100)); err != nil {
		log.Fatal(err)
	}
	if _, err := db2.Delete("S", squirrel.T(10, 1, 20)); err != nil {
		log.Fatal(err)
	}
	if err := sys.SyncAll(); err != nil {
		log.Fatal(err)
	}

	rows, err = sys.Query(`SELECT r1, r3, s1, s2 FROM T`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nView after incremental propagation:")
	fmt.Print(rows)

	stats := sys.Mediator().Stats()
	fmt.Printf("\nmediator stats: %d update txns, %d query txns, %d source polls (2 = initialization only)\n",
		stats.UpdateTxns, stats.QueryTxns, stats.SourcePolls)

	// Verify the §3 consistency definition over the whole run.
	if err := sys.CheckConsistency(); err != nil {
		log.Fatalf("consistency check failed: %v", err)
	}
	fmt.Println("consistency check (Theorem 7.1): OK")
}
