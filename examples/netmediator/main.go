// Command netmediator runs the paper's Figure 3 architecture over real
// TCP: two source-database servers in this process (they could be any two
// machines), a mediator connected to both through the wire protocol, with
// update announcements streaming over the connections and the mediator's
// snapshot queries multiplexed on the same FIFO channels — the ordering
// the Eager Compensation Algorithm relies on.
package main

import (
	"fmt"
	"log"
	"time"

	"squirrel/internal/clock"
	"squirrel/internal/core"
	"squirrel/internal/delta"
	"squirrel/internal/relation"
	"squirrel/internal/source"
	"squirrel/internal/vdp"
	"squirrel/internal/wire"
)

func main() {
	clk := &clock.Logical{}

	// --- "Remote" source databases, each behind a TCP server. ---
	hrSchema := relation.MustSchema("Employees", []relation.Attribute{
		{Name: "emp_id", Type: relation.KindInt},
		{Name: "dept", Type: relation.KindString},
		{Name: "name", Type: relation.KindString},
	}, "emp_id")
	hr := source.NewDB("hr", clk)
	employees := relation.NewSet(hrSchema)
	employees.Insert(relation.T(1, "eng", "ada"))
	employees.Insert(relation.T(2, "eng", "grace"))
	employees.Insert(relation.T(3, "ops", "linus"))
	if err := hr.LoadRelation(employees); err != nil {
		log.Fatal(err)
	}

	payrollSchema := relation.MustSchema("Salaries", []relation.Attribute{
		{Name: "emp", Type: relation.KindInt},
		{Name: "salary", Type: relation.KindInt},
	}, "emp")
	payroll := source.NewDB("payroll", clk)
	salaries := relation.NewSet(payrollSchema)
	salaries.Insert(relation.T(1, 120))
	salaries.Insert(relation.T(2, 130))
	salaries.Insert(relation.T(3, 95))
	if err := payroll.LoadRelation(salaries); err != nil {
		log.Fatal(err)
	}

	hrSrv := wire.NewSourceServer(hr)
	hrAddr, err := hrSrv.Start("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer hrSrv.Close()
	paySrv := wire.NewSourceServer(payroll)
	payAddr, err := paySrv.Start("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer paySrv.Close()
	fmt.Printf("source servers: hr@%s payroll@%s\n", hrAddr, payAddr)

	// --- The mediator dials both sources. ---
	hrConn, err := wire.Dial(hrAddr)
	if err != nil {
		log.Fatal(err)
	}
	defer hrConn.Close()
	payConn, err := wire.Dial(payAddr)
	if err != nil {
		log.Fatal(err)
	}
	defer payConn.Close()

	b := vdp.NewBuilder()
	if err := b.AddSource("hr", hrSchema); err != nil {
		log.Fatal(err)
	}
	if err := b.AddSource("payroll", payrollSchema); err != nil {
		log.Fatal(err)
	}
	if err := b.AddViewSQL("EngPay",
		`SELECT emp_id, name, salary FROM Employees JOIN Salaries ON emp_id = emp WHERE dept = 'eng'`); err != nil {
		log.Fatal(err)
	}
	// Salaries change often: keep the salary column virtual so payroll
	// updates never have to be propagated; queries fetch it on demand.
	b.Annotate("EngPay", vdp.Ann([]string{"emp_id", "name"}, []string{"salary"}))
	b.Annotate("Salaries'", vdp.Ann(nil, []string{"emp", "salary"}))
	plan, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	med, err := core.New(core.Config{
		VDP:     plan,
		Sources: map[string]core.SourceConn{"hr": hrConn, "payroll": payConn},
		Clock:   clk,
	})
	if err != nil {
		log.Fatal(err)
	}
	hrConn.OnAnnounce(med.OnAnnouncement)
	payConn.OnAnnounce(med.OnAnnouncement)
	if err := med.Initialize(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nannotated VDP at the mediator:")
	fmt.Print(plan)
	fmt.Printf("hr is a %s; payroll is a %s\n", med.Contributor("hr"), med.Contributor("payroll"))

	show := func(tag string) {
		ans, err := med.Query("EngPay", nil, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nEngPay %s:\n%s", tag, ans)
	}
	show("(initial)")

	// A payroll raise travels over TCP as an announcement. Until the
	// mediator runs an update transaction, queries stay consistent with
	// the LAST PROCESSED state: the salary poll is Eager-Compensated
	// against the queued raise, so ada still shows 120. This is the §3
	// consistency guarantee in action — the view never shows a mix of
	// processed and unprocessed source states.
	d := delta.New()
	d.Delete("Salaries", relation.T(1, 120))
	d.Insert("Salaries", relation.T(1, 150))
	payroll.MustApply(d)
	fmt.Println("\npayroll commits: ada 120 -> 150 (announcement queued, not yet processed)")
	waitFor(func() bool { return med.QueueLen() >= 1 })
	show("(raise queued: Eager Compensation keeps the answer at ref′ — still 120)")

	if _, err := med.RunUpdateTransaction(); err != nil {
		log.Fatal(err)
	}
	show("(after update transaction: 150)")

	// An HR hire flows through the announcement stream into the
	// materialized portion; the matching salary arrives via polling.
	d2 := delta.New()
	d2.Insert("Employees", relation.T(4, "eng", "barbara"))
	hr.MustApply(d2)
	d3 := delta.New()
	d3.Insert("Salaries", relation.T(4, 140))
	payroll.MustApply(d3)
	fmt.Println("\nhr commits: hire barbara (eng); payroll commits: salary 140")
	waitFor(func() bool { return med.QueueLen() >= 2 })
	if _, err := med.RunUpdateTransaction(); err != nil {
		log.Fatal(err)
	}
	show("(after hire + sync)")

	st := med.Stats()
	fmt.Printf("\nmediator stats: polls=%d tuplesPolled=%d updateTxns=%d queryTxns=%d\n",
		st.SourcePolls, st.TuplesPolled, st.UpdateTxns, st.QueryTxns)
}

func waitFor(cond func() bool) {
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			log.Fatal("timed out waiting for announcements")
		}
		time.Sleep(time.Millisecond)
	}
}
