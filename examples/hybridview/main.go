// Command hybridview walks the paper's worked examples of hybrid
// materialized/virtual support:
//
//   - Example 2.2: the auxiliary relation R' kept virtual — updates to R
//     propagate cheaply (rule #1 needs only S'), while the rare updates to
//     S force a compensated poll of R's source.
//   - Example 2.3: the export relation T partially materialized
//     [r1^m, r3^v, s1^m, s2^v] — queries over materialized attributes are
//     served locally; queries touching virtual attributes build temporary
//     relations, by standard (children-based) or key-based construction.
//   - Example 5.1 / Figure 4: two export relations E and G with a
//     difference node, an expensive θ-join (a1²+a2 < b2²), a hybrid E and
//     virtual B' and F.
package main

import (
	"fmt"
	"log"

	"squirrel"
)

func main() {
	example22and23()
	example51()
}

func banner(s string) { fmt.Printf("\n=== %s ===\n", s) }

func example22and23() {
	banner("Examples 2.2 and 2.3: virtual auxiliary data and a hybrid export")

	sys := squirrel.NewSystem()
	db1 := sys.AddSource("db1")
	db1.MustLoadTable(squirrel.Relations(
		squirrel.MustSchema("R", []squirrel.Attribute{
			{Name: "r1", Type: squirrel.KindInt}, {Name: "r2", Type: squirrel.KindInt},
			{Name: "r3", Type: squirrel.KindInt}, {Name: "r4", Type: squirrel.KindInt}}, "r1"),
		squirrel.T(1, 10, 5, 100), squirrel.T(2, 10, 120, 100),
		squirrel.T(3, 20, 7, 100), squirrel.T(4, 30, 9, 50),
	))
	db2 := sys.AddSource("db2")
	db2.MustLoadTable(squirrel.Relations(
		squirrel.MustSchema("S", []squirrel.Attribute{
			{Name: "s1", Type: squirrel.KindInt}, {Name: "s2", Type: squirrel.KindInt},
			{Name: "s3", Type: squirrel.KindInt}}, "s1"),
		squirrel.T(10, 1, 20), squirrel.T(20, 2, 40), squirrel.T(30, 3, 80),
	))
	sys.MustDefineView("T",
		`SELECT r1, r3, s1, s2 FROM R JOIN S ON r2 = s1 WHERE r4 = 100 AND s3 < 50`)

	// Example 2.2: R' virtual (updates to R are frequent; save the space
	// and maintenance cost). Example 2.3: T hybrid [r1^m,r3^v,s1^m,s2^v].
	sys.AnnotateAllVirtual("R'", []string{"r1", "r2", "r3"})
	sys.Annotate("T", []string{"r1", "s1"}, []string{"r3", "s2"})
	sys.MustStart()
	fmt.Print(sys.Plan())

	med := sys.Mediator()
	fmt.Printf("\ndb1 is a %s, db2 is a %s\n", med.Contributor("db1"), med.Contributor("db2"))

	// Frequent case: ΔR propagates without touching db1 again.
	before := med.Stats().SourcePolls
	if _, err := db1.Insert("R", squirrel.T(5, 20, 11, 100)); err != nil {
		log.Fatal(err)
	}
	if err := sys.SyncAll(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ΔR processed with %d source polls (rule #1: ΔT = ΔR' ⋈ S')\n",
		med.Stats().SourcePolls-before)

	// Rare case: ΔS needs R', which is virtual — the mediator polls db1,
	// compensating for any queued-but-unprocessed R updates.
	before = med.Stats().SourcePolls
	if _, err := db2.Insert("S", squirrel.T(40, 4, 10)); err != nil {
		log.Fatal(err)
	}
	if err := sys.SyncAll(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ΔS processed with %d source poll(s) (rule #2 needs R')\n",
		med.Stats().SourcePolls-before)

	// Example 2.3 queries. Materialized-only: no polling.
	res, err := sys.QueryExport("T", []string{"r1", "s1"}, nil, squirrel.QueryOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nπ_{r1,s1} T  — materialized attributes only: %d rows, %d polls\n",
		res.Answer.Card(), res.Polled)

	// Touching virtual r3: the VAP constructs temporaries. Standard
	// construction polls db1 and db2 (both children are consulted); the
	// key-based construction (r1 is R's key, materialized in T) joins the
	// store with a single poll of db1.
	cond, err := squirrel.ParseCondition("r3 < 100")
	if err != nil {
		log.Fatal(err)
	}
	std, err := sys.QueryExport("T", []string{"r3", "s1"}, cond,
		squirrel.QueryOptions{KeyBased: squirrel.KeyBasedOff})
	if err != nil {
		log.Fatal(err)
	}
	kb, err := sys.QueryExport("T", []string{"r3", "s1"}, cond,
		squirrel.QueryOptions{KeyBased: squirrel.KeyBasedForce})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("π_{r3,s1} σ_{r3<100} T — standard construction: %d rows, %d poll(s)\n",
		std.Answer.Card(), std.Polled)
	fmt.Printf("π_{r3,s1} σ_{r3<100} T — key-based construction: %d rows, %d poll(s), keyBased=%v\n",
		kb.Answer.Card(), kb.Polled, kb.KeyBased)
	if !std.Answer.Equal(kb.Answer) {
		log.Fatal("constructions disagree!")
	}

	if err := sys.CheckConsistency(); err != nil {
		log.Fatalf("consistency: %v", err)
	}
	fmt.Println("consistency check: OK")
}

func example51() {
	banner("Example 5.1 / Figure 4: two exports with a difference node")

	sys := squirrel.NewSystem()
	dbA := sys.AddSource("dbA")
	dbA.MustLoadTable(squirrel.Relations(
		squirrel.MustSchema("A", []squirrel.Attribute{
			{Name: "a1", Type: squirrel.KindInt}, {Name: "a2", Type: squirrel.KindInt}}, "a1"),
		squirrel.T(1, 1), squirrel.T(2, 2), squirrel.T(3, 1),
	))
	dbB := sys.AddSource("dbB")
	dbB.MustLoadTable(squirrel.Relations(
		squirrel.MustSchema("B", []squirrel.Attribute{
			{Name: "b1", Type: squirrel.KindInt}, {Name: "b2", Type: squirrel.KindInt}}, "b1"),
		squirrel.T(10, 3), squirrel.T(20, 4),
	))
	dbC := sys.AddSource("dbC")
	dbC.MustLoadTable(squirrel.Relations(
		squirrel.MustSchema("C", []squirrel.Attribute{
			{Name: "c1", Type: squirrel.KindInt}, {Name: "c2", Type: squirrel.KindInt}}, "c1"),
		squirrel.T(1, 10), squirrel.T(5, 20),
	))
	dbD := sys.AddSource("dbD")
	dbD.MustLoadTable(squirrel.Relations(
		squirrel.MustSchema("D", []squirrel.Attribute{
			{Name: "d1", Type: squirrel.KindInt}, {Name: "d2", Type: squirrel.KindInt}}, "d1"),
		squirrel.T(10, 10), squirrel.T(30, 20),
	))

	// E = π_{a1,a2,b1} σ(A ⋈_{a1²+a2<b2²} B): the expensive θ-join.
	sys.MustDefineView("E",
		`SELECT a1, a2, b1 FROM A JOIN B ON a1*a1 + a2 < b2*b2`)
	// G = π_{a1,b1} E − F where F = π_{c1,d1}(C ⋈_{c2=d2} D). G's left
	// branch reads the export E directly, as in Figure 4.
	sys.MustDefineView("G",
		`SELECT a1, b1 FROM E EXCEPT SELECT c1, d1 FROM C JOIN D ON c2 = d2`)

	// Figure 4's suggested annotation: E hybrid [a1^m, a2^v, b1^m]
	// (a1, b1 feed G and answer most queries; a2 is cheap to fetch via
	// A's key); B' and F virtual; everything else materialized.
	sys.Annotate("E", []string{"a1", "b1"}, []string{"a2"})
	sys.AnnotateAllVirtual("B'", []string{"b1", "b2"})
	sys.AnnotateAllVirtual("G_r", []string{"c1", "d1"}) // F in the paper's figure
	sys.MustStart()
	fmt.Print(sys.Plan())

	g, err := sys.Query(`SELECT a1, b1 FROM G`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nG (set node, fully materialized):")
	fmt.Print(g)

	// Update the difference's right side: F gains (1, 10), killing that
	// G row; the diff-node rules of §5.2 handle it incrementally.
	fmt.Println("\ndbC commits: insert C(9, 10); dbD commits: insert D(9, 10) — no G change")
	if _, err := dbC.Insert("C", squirrel.T(9, 10)); err != nil {
		log.Fatal(err)
	}
	if _, err := dbD.Insert("D", squirrel.T(40, 10)); err != nil {
		log.Fatal(err)
	}
	if err := sys.SyncAll(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("dbC commits: insert C(2, 88); dbD commits: insert D(10, 88) — F gains (2,10), which leaves G")
	if _, err := dbC.Insert("C", squirrel.T(2, 88)); err != nil {
		log.Fatal(err)
	}
	if _, err := dbD.Insert("D", squirrel.T(10, 88)); err != nil {
		log.Fatal(err)
	}
	if err := sys.SyncAll(); err != nil {
		log.Fatal(err)
	}
	g, err = sys.Query(`SELECT a1, b1 FROM G`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nG after the difference-side updates:")
	fmt.Print(g)

	// Query E's virtual attribute a2: with B' virtual, the standard
	// construction polls dbB; key-based construction (a1 is A's key,
	// materialized in E) reads A' locally instead.
	std, err := sys.QueryExport("E", []string{"a1", "a2"}, nil,
		squirrel.QueryOptions{KeyBased: squirrel.KeyBasedOff})
	if err != nil {
		log.Fatal(err)
	}
	kb, err := sys.QueryExport("E", []string{"a1", "a2"}, nil,
		squirrel.QueryOptions{KeyBased: squirrel.KeyBasedAuto})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nπ_{a1,a2} E — standard: %d polls; auto (key-based=%v): %d polls\n",
		std.Polled, kb.KeyBased, kb.Polled)
	if !std.Answer.Equal(kb.Answer) {
		log.Fatal("constructions disagree!")
	}

	if err := sys.CheckConsistency(); err != nil {
		log.Fatalf("consistency: %v", err)
	}
	fmt.Println("consistency check: OK")
}
