// Command retail integrates two autonomous operational systems — an order
// management database and a customer master database — into one view, and
// contrasts the three support strategies the paper frames in §1:
//
//   - fully materialized: fastest queries, every update propagated;
//   - fully virtual: no storage or maintenance, every query ships to the
//     sources;
//   - hybrid: hot attributes materialized, cold ones fetched on demand.
//
// The same workload (a burst of order updates followed by a query mix that
// rarely touches the cold attributes) runs against all three, printing
// polls, answer sizes, and bytes resident.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"squirrel"
)

const (
	customers = 200
	orders    = 1000
)

func buildSystem(label string, annotate func(sys *squirrel.System)) *squirrel.System {
	sys := squirrel.NewSystem()
	rng := rand.New(rand.NewSource(7)) // same data for every configuration

	custSchema := squirrel.MustSchema("Customers", []squirrel.Attribute{
		{Name: "cust_id", Type: squirrel.KindInt},
		{Name: "region", Type: squirrel.KindString},
		{Name: "segment", Type: squirrel.KindString},
	}, "cust_id")
	cust := squirrel.NewRelation(custSchema, squirrel.Set)
	regions := []string{"EU", "US", "APAC"}
	segments := []string{"retail", "wholesale"}
	for i := 1; i <= customers; i++ {
		cust.Insert(squirrel.T(i, regions[rng.Intn(len(regions))], segments[rng.Intn(len(segments))]))
	}

	orderSchema := squirrel.MustSchema("Orders", []squirrel.Attribute{
		{Name: "order_id", Type: squirrel.KindInt},
		{Name: "cust", Type: squirrel.KindInt},
		{Name: "amount", Type: squirrel.KindInt},
		{Name: "status", Type: squirrel.KindString},
	}, "order_id")
	ord := squirrel.NewRelation(orderSchema, squirrel.Set)
	for i := 1; i <= orders; i++ {
		ord.Insert(squirrel.T(i, 1+rng.Intn(customers), 10+rng.Intn(990), "open"))
	}

	crm := sys.AddSource("crm")
	crm.MustLoadTable(cust)
	oms := sys.AddSource("oms")
	oms.MustLoadTable(ord)

	// The integrated view: open orders joined with customer attributes.
	sys.MustDefineView("OpenOrders",
		`SELECT order_id, cust, amount, region, segment
		 FROM Orders JOIN Customers ON cust = cust_id
		 WHERE status = 'open'`)
	if annotate != nil {
		annotate(sys)
	}
	sys.MustStart()
	return sys
}

func runWorkload(label string, sys *squirrel.System) {
	oms := sys.Mediator() // for stats only
	_ = oms
	rng := rand.New(rand.NewSource(11))

	// A burst of order churn: new orders arrive, old ones close.
	omsSrc := sys.MustSource("oms")
	nextID := int64(orders + 1)
	for i := 0; i < 50; i++ {
		d := squirrel.NewDelta()
		d.Insert("Orders", squirrel.T(nextID, int64(1+rng.Intn(customers)), int64(10+rng.Intn(990)), "open"))
		nextID++
		omsSrc.MustApply(d)
		if i%5 == 0 {
			if _, err := sys.Sync(); err != nil {
				log.Fatal(err)
			}
		}
	}
	if err := sys.SyncAll(); err != nil {
		log.Fatal(err)
	}

	// Query mix: 90% hot (order_id, cust, amount), 10% cold (region,
	// segment) — the paper's assumption that virtual attributes are
	// rarely accessed.
	hot, _ := squirrel.ParseCondition("amount > 500")
	var answerRows int
	for i := 0; i < 50; i++ {
		attrs := []string{"order_id", "cust", "amount"}
		if i%10 == 0 {
			attrs = []string{"order_id", "region", "segment"}
		}
		res, err := sys.QueryExport("OpenOrders", attrs, hot, squirrel.QueryOptions{})
		if err != nil {
			log.Fatal(err)
		}
		answerRows += res.Answer.Card()
	}

	stats := sys.Mediator().Stats()
	bytes := 0
	for _, node := range []string{"Orders'", "Customers'", "OpenOrders"} {
		if st := sys.Mediator().StoreSnapshot(node); st != nil {
			bytes += st.MemoryFootprint()
		}
	}
	fmt.Printf("%-20s  polls=%-4d tuplesPolled=%-6d atoms=%-6d temps=%-4d resident=%7dB  answers=%d rows\n",
		label, stats.SourcePolls, stats.TuplesPolled, stats.AtomsPropagated, stats.TempsBuilt, bytes, answerRows)

	if err := sys.CheckConsistency(); err != nil {
		log.Fatalf("%s: consistency check failed: %v", label, err)
	}
}

func main() {
	fmt.Println("retail integration: 50 order-churn transactions, then 50 queries (90% hot / 10% cold)")
	fmt.Println()

	m := buildSystem("materialized", nil)
	runWorkload("fully materialized", m)

	v := buildSystem("virtual", func(sys *squirrel.System) {
		sys.AnnotateAllVirtual("Orders'", []string{"order_id", "cust", "amount"})
		sys.AnnotateAllVirtual("Customers'", []string{"cust_id", "region", "segment"})
		sys.AnnotateAllVirtual("OpenOrders", []string{"order_id", "cust", "amount", "region", "segment"})
	})
	runWorkload("fully virtual", v)

	h := buildSystem("hybrid", func(sys *squirrel.System) {
		// Hot attributes materialized; cold customer attributes virtual,
		// fetched through the customer key when needed.
		sys.Annotate("OpenOrders", []string{"order_id", "cust", "amount"}, []string{"region", "segment"})
		sys.AnnotateAllVirtual("Customers'", []string{"cust_id", "region", "segment"})
	})
	runWorkload("hybrid", h)

	fmt.Println("\nReading the rows: materialized pays propagation (atoms) but no query polls;")
	fmt.Println("virtual pays polls+transfer on every query; hybrid polls only for the 10% cold queries")
	fmt.Println("and keeps the resident footprint between the two extremes.")
}
