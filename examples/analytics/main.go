// Command analytics shows the operational side of the framework: several
// export relations over shared sources, multi-export queries (§6.3's
// set-of-triples form), a background runtime draining the update queue on
// a period (the u_hold policy), and a state snapshot a restarted process
// would resume from.
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"squirrel"
)

func main() {
	sys := squirrel.NewSystem()
	sales := sys.AddSource("sales")
	sales.MustLoadTable(squirrel.Relations(
		squirrel.MustSchema("Orders", []squirrel.Attribute{
			{Name: "oid", Type: squirrel.KindInt},
			{Name: "prod", Type: squirrel.KindInt},
			{Name: "qty", Type: squirrel.KindInt},
		}, "oid"),
		squirrel.T(1, 100, 3), squirrel.T(2, 101, 1), squirrel.T(3, 100, 2),
	))
	catalogDB := sys.AddSource("catalog")
	catalogDB.MustLoadTable(squirrel.Relations(
		squirrel.MustSchema("Products", []squirrel.Attribute{
			{Name: "pid", Type: squirrel.KindInt},
			{Name: "price", Type: squirrel.KindInt},
			{Name: "active", Type: squirrel.KindInt},
		}, "pid"),
		squirrel.T(100, 10, 1), squirrel.T(101, 25, 1), squirrel.T(102, 99, 0),
	))

	// Two export relations over the same sources.
	sys.MustDefineView("OrderLines",
		`SELECT oid, qty, pid, price FROM Orders JOIN Products ON prod = pid WHERE active = 1`)
	sys.MustDefineView("Expensive",
		`SELECT prod FROM Orders JOIN Products ON prod = pid WHERE price > 20`)
	sys.MustStart()
	fmt.Println("annotated VDP:")
	fmt.Print(sys.Plan())

	// Background runtime: the u_hold policy as a deployable loop.
	rt, err := sys.StartRuntime(5 * time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}

	// Commits land while the loop runs.
	if _, err := sales.Insert("Orders", squirrel.T(4, 101, 7)); err != nil {
		log.Fatal(err)
	}
	if _, err := catalogDB.Insert("Products", squirrel.T(103, 50, 1)); err != nil {
		log.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for sys.Mediator().QueueLen() > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	// Multi-export queries: join and union across the two exports (the
	// attribute sets are disjoint — OrderLines has pid, Expensive has
	// prod — so no renaming is needed).
	rows, err := sys.Query(
		`SELECT oid, qty, price FROM OrderLines JOIN Expensive ON pid = prod`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\norder lines for expensive products (join ACROSS exports):")
	fmt.Print(rows)

	u, err := sys.Query(`SELECT pid FROM OrderLines UNION SELECT prod FROM Expensive`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nproducts appearing in either export (union across exports):")
	fmt.Print(u)

	if err := rt.Stop(); err != nil {
		log.Fatal(err)
	}
	if err := sys.CheckConsistency(); err != nil {
		log.Fatalf("consistency: %v", err)
	}
	fmt.Println("\nconsistency check (incl. multi-export answers): OK")

	// Snapshot the mediator state; a restarted process would restore it
	// and replay announcements committed while down (see
	// System.StartFromState and source.DB.ReplaySince).
	var state bytes.Buffer
	if err := sys.SaveState(&state); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("state snapshot: %d bytes (ref′ %v)\n", state.Len(), sys.Mediator().LastProcessed())
}
