package squirrel

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func demoSystem(t testing.TB) *System {
	t.Helper()
	sys := NewSystem()
	db1 := sys.AddSource("db1")
	db1.MustLoadTable(Relations(
		MustSchema("R", []Attribute{
			{Name: "r1", Type: KindInt}, {Name: "r2", Type: KindInt},
			{Name: "r3", Type: KindInt}, {Name: "r4", Type: KindInt}}, "r1"),
		T(1, 10, 5, 100), T(2, 10, 120, 100), T(3, 20, 7, 100), T(4, 30, 9, 50),
	))
	db2 := sys.AddSource("db2")
	db2.MustLoadTable(Relations(
		MustSchema("S", []Attribute{
			{Name: "s1", Type: KindInt}, {Name: "s2", Type: KindInt},
			{Name: "s3", Type: KindInt}}, "s1"),
		T(10, 1, 20), T(20, 2, 40), T(30, 3, 80),
	))
	sys.MustDefineView("T",
		`SELECT r1, r3, s1, s2 FROM R JOIN S ON r2 = s1 WHERE r4 = 100 AND s3 < 50`)
	return sys
}

func TestSystemQuickstart(t *testing.T) {
	sys := demoSystem(t)
	sys.MustStart()

	rows, err := sys.Query(`SELECT r1, s1 FROM T`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Card() != 3 {
		t.Fatalf("initial view: %s", rows)
	}

	src := sys.sources["db1"]
	if _, err := src.Insert("R", T(5, 20, 11, 100)); err != nil {
		t.Fatal(err)
	}
	if err := sys.SyncAll(); err != nil {
		t.Fatal(err)
	}
	rows, err = sys.Query(`SELECT r1 FROM T WHERE s1 = 20`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Card() != 2 {
		t.Fatalf("after insert: %s", rows)
	}
	if _, err := src.Delete("R", T(5, 20, 11, 100)); err != nil {
		t.Fatal(err)
	}
	if err := sys.SyncAll(); err != nil {
		t.Fatal(err)
	}
	rows, _ = sys.Query(`SELECT r1 FROM T WHERE s1 = 20`)
	if rows.Card() != 1 {
		t.Fatalf("after delete: %s", rows)
	}
	if err := sys.CheckConsistency(); err != nil {
		t.Fatalf("trace inconsistent: %v", err)
	}
	if sys.Plan() == nil || sys.Mediator() == nil || sys.Trace() == nil {
		t.Errorf("accessors nil")
	}
	if sys.ClockNow() == 0 {
		t.Errorf("clock")
	}
}

func TestSystemHybridAnnotation(t *testing.T) {
	sys := demoSystem(t)
	sys.Annotate("T", []string{"r1", "r3", "s1"}, []string{"s2"})
	sys.AnnotateAllVirtual("S'", []string{"s1", "s2"})
	sys.MustStart()

	cond, err := ParseCondition(`s2 >= 1`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.QueryExport("T", []string{"r1", "s2"}, cond, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Answer.Card() != 3 || res.Polled == 0 {
		t.Fatalf("hybrid query: %+v\n%s", res, res.Answer)
	}
	if err := sys.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	worst, err := sys.CheckFreshness(TimeVector{})
	if err != nil || worst == nil {
		t.Fatalf("freshness: %v %v", worst, err)
	}
}

func TestSystemLifecycleErrors(t *testing.T) {
	sys := demoSystem(t)
	if _, err := sys.Query("SELECT r1 FROM T"); err == nil {
		t.Errorf("query before start")
	}
	if _, err := sys.Sync(); err == nil {
		t.Errorf("sync before start")
	}
	if err := sys.CheckConsistency(); err == nil {
		t.Errorf("check before start")
	}
	if _, err := sys.CheckFreshness(nil); err == nil {
		t.Errorf("freshness before start")
	}
	if _, err := sys.QueryExport("T", nil, nil, QueryOptions{}); err == nil {
		t.Errorf("query export before start")
	}
	sys.MustStart()
	if err := sys.Start(); err == nil {
		t.Errorf("double start")
	}
	if err := sys.DefineView("X", "SELECT r1 FROM R"); err == nil {
		t.Errorf("define after start")
	}
	src := sys.sources["db1"]
	if err := src.CreateTable(MustSchema("Z", []Attribute{{Name: "z", Type: KindInt}}), Set); err == nil {
		t.Errorf("create table after start")
	}
	if err := src.LoadTable(Relations(MustSchema("Z2", []Attribute{{Name: "z", Type: KindInt}}))); err == nil {
		t.Errorf("load table after start")
	}

	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("AddSource after start should panic")
			}
		}()
		sys.AddSource("late")
	}()
	func() {
		sys2 := NewSystem()
		sys2.AddSource("dup")
		defer func() {
			if recover() == nil {
				t.Errorf("duplicate source should panic")
			}
		}()
		sys2.AddSource("dup")
	}()
}

func TestSystemBadViewAndAnnotation(t *testing.T) {
	sys := NewSystem()
	db := sys.AddSource("db")
	db.MustCreateTable(MustSchema("A", []Attribute{{Name: "x", Type: KindInt}}), Set)
	if err := sys.DefineView("V", "garbage"); err == nil {
		t.Errorf("bad SQL")
	}
	sys.MustDefineView("V", "SELECT x FROM A")
	sys.Annotate("GHOST", []string{"x"}, nil)
	if err := sys.Start(); err == nil {
		t.Errorf("annotation of unknown node must fail Start")
	}
}

func TestFigure2ViaPublicAPI(t *testing.T) {
	sc, table := Figure2Scenario()
	pseudo, err := sc.PseudoConsistent()
	if err != nil || !pseudo {
		t.Fatalf("pseudo: %v %v", pseudo, err)
	}
	consistent, err := sc.Consistent()
	if err != nil || consistent {
		t.Fatalf("consistent: %v %v", consistent, err)
	}
	if !strings.Contains(table, "t1") {
		t.Errorf("table: %s", table)
	}
}

func TestPublicExprHelpers(t *testing.T) {
	e := Conj(Eq(A("x"), CInt(1)), Disj(Lt(A("y"), CStr("z")), Ge(A("x"), CInt(0))), Ne(A("x"), CInt(9)), Le(A("x"), CInt(5)), Gt(A("x"), CInt(-5)))
	if e.String() == "" {
		t.Errorf("expr helpers")
	}
	if Int(1).Kind() != KindInt || Float(1).Kind() != KindFloat || Str("").Kind() != KindString ||
		Bool(true).Kind() != KindBool || !Null().IsNull() {
		t.Errorf("value helpers")
	}
	r := NewRelation(MustSchema("X", []Attribute{{Name: "a", Type: KindInt}}), Bag)
	r.Insert(T(1))
	if r.Card() != 1 {
		t.Errorf("NewRelation")
	}
}

func TestSystemRuntimeAndPersistence(t *testing.T) {
	sys := demoSystem(t)
	sys.MustStart()
	rt, err := sys.StartRuntime(2 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	src := sys.MustSource("db1")
	if _, err := src.Insert("R", T(5, 20, 11, 100)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for sys.Mediator().QueueLen() > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if err := rt.Stop(); err != nil {
		t.Fatal(err)
	}

	// Persist, then restore into a fresh system sharing the SAME sources.
	var buf bytes.Buffer
	if err := sys.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	// The sources keep committing while "down".
	if _, err := src.Insert("R", T(6, 20, 13, 100)); err != nil {
		t.Fatal(err)
	}

	// A restored system needs the same builder config and the same source
	// DBs. System owns its sources, so restore-with-shared-sources goes
	// through the lower-level API in practice; here we reuse the same
	// System shape by rebuilding against the same databases via internal
	// replay: StartFromState on a twin system sharing the clock is not
	// expressible through the public System (sources are created by
	// AddSource), so assert SaveState round-trips through persist instead.
	snap, err := sys.Mediator().Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Store) == 0 {
		t.Fatal("empty snapshot")
	}
	if buf.Len() == 0 {
		t.Fatal("empty serialized state")
	}
	// Lifecycle errors.
	if _, err := demoSystem(t).StartRuntime(time.Second); err == nil {
		t.Errorf("runtime before start must fail")
	}
	if err := demoSystem(t).SaveState(&bytes.Buffer{}); err == nil {
		t.Errorf("save before start must fail")
	}
	started := demoSystem(t)
	started.MustStart()
	if err := started.StartFromState(&buf); err == nil {
		t.Errorf("StartFromState after Start must fail")
	}
	fresh := demoSystem(t)
	if err := fresh.StartFromState(bytes.NewReader([]byte("junk"))); err == nil {
		t.Errorf("bad state must fail")
	}
}

// TestSystemDurableWAL walks the durable lifecycle through the public
// API: boot with a WAL, commit, die without warning, and a twin system
// (same catalog, same initial source contents) recovers the store from
// checkpoint + log replay alone.
func TestSystemDurableWAL(t *testing.T) {
	dir := t.TempDir()
	sys := demoSystem(t)
	info, err := sys.StartDurable(DurabilityConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if info != nil {
		t.Fatalf("fresh start returned recovery info %+v", info)
	}
	if sys.WAL() == nil {
		t.Fatal("StartDurable left no WAL manager")
	}
	if _, err := sys.MustSource("db1").Insert("R", T(5, 20, 11, 100)); err != nil {
		t.Fatal(err)
	}
	if err := sys.SyncAll(); err != nil {
		t.Fatal(err)
	}
	rows, err := sys.Query(`SELECT r1, s1 FROM T`)
	if err != nil || rows.Card() != 4 {
		t.Fatalf("pre-crash view (err %v):\n%s", err, rows)
	}
	version := sys.StoreVersion()
	sys.WAL().Kill() // power cut: no Shutdown, no final checkpoint

	twin := demoSystem(t)
	info, err = twin.StartDurable(DurabilityConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if info == nil || info.Version != version || info.Replayed == 0 {
		t.Fatalf("recovery info %+v, want replay up to v%d", info, version)
	}
	rows, err = twin.Query(`SELECT r1, s1 FROM T`)
	if err != nil || rows.Card() != 4 {
		t.Fatalf("recovered view (err %v):\n%s", err, rows)
	}

	// SaveStateFile round-trips through the atomic save path.
	statePath := dir + "/state.snap"
	if err := twin.SaveStateFile(statePath); err != nil {
		t.Fatal(err)
	}
	if err := twin.Shutdown(); err != nil {
		t.Fatal(err)
	}

	// Clean shutdown checkpointed everything: the next boot replays zero
	// records.
	third := demoSystem(t)
	info, err = third.StartDurable(DurabilityConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if info == nil || info.Replayed != 0 || info.Version != version {
		t.Fatalf("post-shutdown recovery info %+v, want clean checkpoint at v%d", info, version)
	}
	if err := third.Shutdown(); err != nil {
		t.Fatal(err)
	}

	// Lifecycle: StartDurable on a started system must fail.
	started := demoSystem(t)
	started.MustStart()
	if _, err := started.StartDurable(DurabilityConfig{Dir: t.TempDir()}); err == nil {
		t.Error("StartDurable after Start must fail")
	}
}

func TestSystemMultiExportQuery(t *testing.T) {
	sys := demoSystem(t)
	// RV's schema (r2, r4) is disjoint from T's (r1, r3, s1, s2), so the
	// exports can be joined without renaming.
	sys.MustDefineView("RV", `SELECT r2, r4 FROM R WHERE r4 = 100`)
	sys.MustStart()

	// Join the two exports: T rows whose s1 appears as an RV r2 value.
	j, err := sys.Query(`SELECT r1, s1, r4 FROM T JOIN RV ON s1 = r2`)
	if err != nil {
		t.Fatal(err)
	}
	// T rows have s1 ∈ {10, 10, 20}; RV r2 values (bag) are {10, 10, 20}:
	// the two s1=10 rows match two RV rows each, the s1=20 row matches one.
	if j.Card() != 2*2+1 {
		t.Fatalf("join over exports: %s", j)
	}
	// Union across exports.
	u, err := sys.Query(`SELECT r1 FROM T UNION SELECT r2 FROM RV`)
	if err != nil {
		t.Fatal(err)
	}
	if u.Card() != 6 {
		t.Fatalf("union over exports: %s", u)
	}
	if err := sys.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestSystemAdvise(t *testing.T) {
	sys := demoSystem(t)
	if _, err := sys.Advise(WorkloadProfile{}); err == nil {
		t.Errorf("advise before start must fail")
	}
	sys.MustStart()
	advice, err := sys.Advise(WorkloadProfile{
		AccessFreq:  map[string]float64{"r1": 0.9, "s1": 0.9},
		UpdateShare: map[string]float64{"db1": 0.9, "db2": 0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if advice.Annotations["T"] == nil || len(advice.Reasons) == 0 {
		t.Fatalf("advice empty: %+v", advice)
	}
	if advice.Annotations["T"].IsMaterialized("r3") {
		t.Errorf("cold r3 should be virtual")
	}
}

func TestSystemReannotateAndAdapt(t *testing.T) {
	sys := demoSystem(t)
	if _, err := sys.Reannotate(nil); err == nil {
		t.Errorf("reannotate before start must fail")
	}
	if _, err := sys.StartAdapt(AdaptConfig{}); err == nil {
		t.Errorf("adapt before start must fail")
	}
	sys.MustStart()

	// Live switch: virtualize T.s2 without downtime; answers stay exact.
	anns := sys.Plan().Annotations()
	anns["T"] = Ann([]string{"r1", "r3", "s1"}, []string{"s2"})
	flips, err := sys.Reannotate(anns)
	if err != nil {
		t.Fatal(err)
	}
	if len(flips) != 1 || flips[0].String() != "T.s2 m->v" {
		t.Fatalf("flips = %v", flips)
	}
	if sys.Plan().Node("T").Ann.IsMaterialized("s2") {
		t.Fatal("Plan() must expose the live annotation")
	}
	rows, err := sys.Query(`SELECT r1, s2 FROM T`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Card() != 3 {
		t.Fatalf("post-switch view: %s", rows)
	}
	if err := sys.CheckConsistency(); err != nil {
		t.Fatal(err)
	}

	// The drifted annotation survives persistence: the snapshot records it
	// and a Restore would re-annotate the constructed plan to match.
	snap, err := sys.Mediator().Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Annotations == nil || snap.Annotations["T"].IsMaterialized("s2") {
		t.Fatalf("snapshot annotations = %v", snap.Annotations)
	}
	var buf bytes.Buffer
	if err := sys.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"annotations"`) {
		t.Fatal("persisted envelope missing annotations")
	}

	// A manual controller through the public surface.
	ctrl, err := sys.StartAdapt(AdaptConfig{Manual: true, Interval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Stop()
	if dec, err := ctrl.Readvise(true); err != nil || dec == nil {
		t.Fatalf("readvise: %v %v", dec, err)
	}
}
